//! The simulator core: node registry, connection table and event loop.

use crate::addr::{AddressAllocator, HostAddr};
use crate::app::{Action, App, ConnId, Ctx, Direction, NodeId};
use crate::event::{EventKind, EventQueue};
use crate::faults::{ChunkFate, FaultPlan};
use crate::metrics::SimMetrics;
use crate::pool::{BufferPool, Payload};
use crate::profile::Subsystem;
use crate::queue::SchedulerKind;
use crate::shard::ShardedSim;
use crate::telemetry::{
    EventBody, EventCategory, FaultKind, Gauge, SimHist, Telemetry, TelemetryEvent,
};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Tunables for the simulated internet.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// One-way latency range sampled per connection, in microseconds.
    pub latency_us: (u64, u64),
    /// Default upload bandwidth range (bytes/sec) sampled per node,
    /// modelling the DSL/cable mix of 2006.
    pub upload_bps: (u64, u64),
    /// Default download bandwidth range (bytes/sec) sampled per node.
    pub download_bps: (u64, u64),
    /// When set, delivered data is fragmented into chunks of at most this
    /// many bytes, exercising protocol reframing. `None` delivers each
    /// `send` as one chunk (cheaper for month-scale runs).
    pub mss: Option<usize>,
    /// Which event scheduler backs the run. [`SchedulerKind::Calendar`] is
    /// the fast default; [`SchedulerKind::Heap`] keeps the original binary
    /// heap for head-to-head benchmarks. Both dispatch identically.
    pub scheduler: SchedulerKind,
    /// Seed-deterministic fault injection. The default
    /// [`FaultPlan::none()`] draws no randomness and leaves runs
    /// byte-identical to a fault-free simulator.
    pub faults: FaultPlan,
    /// Number of simulation shards. `1` (the default) runs the untouched
    /// serial event loop; `>= 2` switches to the sharded deterministic
    /// engine (see [`crate::shard_of`] and the `shard` module docs): nodes
    /// partition across shards, each with its own calendar queue on a
    /// scoped worker thread, synchronized in conservative sim-time windows.
    /// The sharded trajectory is deterministic and identical for *every*
    /// shard count `>= 2`, but distinct from the serial one (the serial
    /// loop threads all randomness through one RNG in dispatch order, which
    /// no parallel schedule can reproduce). Sharded runs always use the
    /// calendar queue; `scheduler` is ignored.
    pub shards: usize,
    /// Lookahead window length for sharded runs, in microseconds. Cross-
    /// shard latency is floored at one window, so shorter windows tighten
    /// latency fidelity while adding barrier crossings. Ignored when
    /// `shards == 1`.
    pub shard_window_us: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency_us: (20_000, 150_000),
            upload_bps: (16_000, 128_000),
            download_bps: (64_000, 512_000),
            mss: None,
            scheduler: SchedulerKind::Calendar,
            faults: FaultPlan::none(),
            shards: 1,
            shard_window_us: 1_000_000,
        }
    }
}

impl SimConfig {
    /// Reads the sharding knobs from the environment: `P2PMAL_SHARDS`
    /// (clamped to 1..=64; unset or unparsable means 1 = serial) and
    /// `P2PMAL_SHARD_WINDOW_MS` (window length in milliseconds, min 1;
    /// default 1000). Returns `(shards, shard_window_us)` for harnesses to
    /// drop into a config.
    pub fn shards_from_env() -> (usize, u64) {
        let shards = std::env::var("P2PMAL_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(1, 64))
            .unwrap_or(1);
        let window_us = std::env::var("P2PMAL_SHARD_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(|ms| ms.max(1) * 1_000)
            .unwrap_or(1_000_000);
        (shards, window_us)
    }
}

/// Per-node spawn parameters.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Behind NAT: gets an RFC 1918 local address and rejects inbound dials.
    pub nat: bool,
    /// Port to accept connections on (ignored for NAT nodes, which cannot
    /// be dialed).
    pub listen_port: Option<u16>,
    /// Override the sampled upload bandwidth.
    pub upload_bps: Option<u64>,
    /// Override the sampled download bandwidth.
    pub download_bps: Option<u64>,
    /// Exempt from fault-plan churn (instrumented crawlers, always-on
    /// infrastructure the measurement depends on).
    pub durable: bool,
}

impl NodeSpec {
    /// A publicly addressable node.
    pub fn public() -> Self {
        NodeSpec {
            nat: false,
            listen_port: None,
            upload_bps: None,
            download_bps: None,
            durable: false,
        }
    }

    /// A NATed node: advertises a private address, cannot be dialed.
    pub fn nat() -> Self {
        NodeSpec {
            nat: true,
            ..Self::public()
        }
    }

    /// Listen for inbound connections on `port`.
    pub fn listen(mut self, port: u16) -> Self {
        self.listen_port = Some(port);
        self
    }

    pub fn upload(mut self, bps: u64) -> Self {
        self.upload_bps = Some(bps);
        self
    }

    pub fn download(mut self, bps: u64) -> Self {
        self.download_bps = Some(bps);
        self
    }

    /// Never enrolled in fault-plan churn.
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }
}

struct NodeSlot {
    app: Option<Box<dyn App>>,
    local_addr: HostAddr,
    external_addr: HostAddr,
    upload_bps: u64,
    download_bps: u64,
    alive: bool,
    nat: bool,
    /// Registered a listener at spawn; churn revival re-registers it.
    listener: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// SYN in flight; only the initiator knows about the connection.
    Pending,
    Open,
    Closed,
}

struct Conn {
    initiator: NodeId,
    /// Set when the connection is accepted.
    acceptor: Option<NodeId>,
    latency: SimDuration,
    /// Effective bytes/sec each way: min(sender upload, receiver download).
    bandwidth: [u64; 2],
    /// Earliest time each direction's link is free (serialization).
    next_free: [SimTime; 2],
    state: ConnState,
}

/// The discrete-event simulator. See the crate docs for an end-to-end
/// example.
pub struct Simulator {
    config: SimConfig,
    rng: StdRng,
    now: SimTime,
    nodes: Vec<NodeSlot>,
    conns: HashMap<u64, Conn>,
    listeners: HashMap<HostAddr, NodeId>,
    queue: EventQueue,
    alloc: AddressAllocator,
    next_conn_id: u64,
    metrics: SimMetrics,
    pool: BufferPool,
    telemetry: Telemetry,
    /// The sharded engine, engaged when `config.shards >= 2`; every public
    /// method delegates to it and the serial state above stays empty.
    sharded: Option<Box<ShardedSim>>,
}

impl Simulator {
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let queue = EventQueue::new(config.scheduler);
        let sharded = if config.shards > 1 {
            Some(Box::new(ShardedSim::new(config.clone(), seed)))
        } else {
            None
        };
        Simulator {
            config,
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            nodes: Vec::new(),
            conns: HashMap::new(),
            listeners: HashMap::new(),
            queue,
            alloc: AddressAllocator::new(),
            next_conn_id: 0,
            metrics: SimMetrics::default(),
            pool: BufferPool::default(),
            telemetry: Telemetry::disabled(),
            sharded,
        }
    }

    /// Number of shards this simulator runs on (1 = serial).
    pub fn shard_count(&self) -> usize {
        self.sharded.as_ref().map_or(1, |s| s.shard_count())
    }

    /// Lookahead window length of a sharded run, in microseconds (0 when
    /// serial — the serial loop has no windows).
    pub fn shard_window_us(&self) -> u64 {
        self.sharded.as_ref().map_or(0, |s| s.window_us())
    }

    /// Attaches the telemetry sink hub. The default ([`Telemetry::disabled`])
    /// emits nothing, draws no randomness, and leaves trajectories
    /// byte-identical to a simulator without the telemetry layer.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(s) = &mut self.sharded {
            s.set_telemetry(telemetry);
            return;
        }
        self.telemetry = telemetry;
    }

    /// Flushes every attached telemetry sink (harness end-of-run hook; file
    /// sinks also flush on drop).
    pub fn flush_telemetry(&mut self) {
        if let Some(s) = &mut self.sharded {
            s.flush_telemetry();
            return;
        }
        self.telemetry.flush();
    }

    /// Samples the scheduled-event queue depth into the metrics registry
    /// (gauge: latest value; histogram: every sample). Deterministic —
    /// harness loops call this unconditionally, e.g. once per simulated day.
    /// Sharded runs additionally sample the global depth at every window
    /// boundary on their own.
    pub fn sample_queue_depth(&mut self) {
        if let Some(s) = &mut self.sharded {
            s.sample_queue_depth();
            return;
        }
        let depth = self.queue.len() as u64;
        self.metrics.telemetry.set_gauge(Gauge::QueueDepth, depth);
        self.metrics.telemetry.record(SimHist::QueueDepth, depth);
    }

    /// Journals one injected fault. Only constructs the event with sinks
    /// attached; never draws randomness either way.
    #[inline]
    fn emit_fault(&mut self, kind: FaultKind) {
        if self.telemetry.enabled(EventCategory::Fault) {
            self.telemetry.emit(TelemetryEvent::new(
                self.now,
                EventBody::FaultInjected { kind },
            ));
        }
    }

    /// Brings a node online now; `on_start` runs at the current time.
    pub fn spawn(&mut self, spec: NodeSpec, app: Box<dyn App>) -> NodeId {
        if let Some(s) = &mut self.sharded {
            return s.spawn(spec, app);
        }
        let id = NodeId(self.nodes.len());
        let external_ip = self.alloc.alloc_public(&mut self.rng);
        let port = spec.listen_port.unwrap_or(0);
        let external_addr = HostAddr::new(external_ip, port);
        let local_addr = if spec.nat {
            HostAddr::new(self.alloc.alloc_private(&mut self.rng), port)
        } else {
            external_addr
        };
        let upload = spec.upload_bps.unwrap_or_else(|| {
            self.rng
                .gen_range(self.config.upload_bps.0..=self.config.upload_bps.1)
        });
        let download = spec.download_bps.unwrap_or_else(|| {
            self.rng
                .gen_range(self.config.download_bps.0..=self.config.download_bps.1)
        });
        let listener = spec.listen_port.is_some() && !spec.nat;
        self.nodes.push(NodeSlot {
            app: Some(app),
            local_addr,
            external_addr,
            upload_bps: upload,
            download_bps: download,
            alive: true,
            nat: spec.nat,
            listener,
        });
        if listener {
            self.listeners.insert(external_addr, id);
        }
        self.metrics.nodes_spawned += 1;
        self.queue.push(self.now, EventKind::Start { node: id });
        // Fault-plan churn enrollment: a sampled fraction of non-durable
        // nodes get a first session-end scheduled. No draw when churn is
        // off (the FaultPlan::none() byte-identity contract).
        if let Some(churn) = self.config.faults.churn {
            if !spec.durable && churn.fraction > 0.0 && self.rng.gen_bool(churn.fraction) {
                let up = self
                    .rng
                    .gen_range(churn.uptime_secs.0..=churn.uptime_secs.1);
                self.queue.push(
                    self.now + SimDuration::from_secs(up),
                    EventKind::ChurnDown { node: id },
                );
            }
        }
        id
    }

    /// The routable address of `node` (where peers can dial it).
    pub fn node_addr(&self, node: NodeId) -> HostAddr {
        if let Some(s) = &self.sharded {
            return s.node_addr(node);
        }
        self.nodes[node.0].external_addr
    }

    /// The address `node` believes it has (private when behind NAT).
    pub fn node_local_addr(&self, node: NodeId) -> HostAddr {
        if let Some(s) = &self.sharded {
            return s.node_local_addr(node);
        }
        self.nodes[node.0].local_addr
    }

    /// Whether the node is currently online.
    pub fn is_alive(&self, node: NodeId) -> bool {
        if let Some(s) = &self.sharded {
            return s.is_alive(node);
        }
        self.nodes[node.0].alive
    }

    /// Takes a node offline from outside the simulation (harness-driven
    /// churn). Peers of its open connections get `on_closed`.
    pub fn stop_node(&mut self, node: NodeId) {
        if let Some(s) = &mut self.sharded {
            s.stop_node(node);
            return;
        }
        self.shutdown_node(node);
    }

    pub fn now(&self) -> SimTime {
        if let Some(s) = &self.sharded {
            return s.now();
        }
        self.now
    }

    pub fn metrics(&self) -> &SimMetrics {
        if let Some(s) = &self.sharded {
            return s.metrics();
        }
        &self.metrics
    }

    /// Records a memory-accounting snapshot into `metrics().memory`: every
    /// live app's [`App::memory_estimate`] summed, plus the process RSS
    /// gauges. Diagnostics only — draws no randomness, schedules nothing,
    /// and the snapshot hides behind an always-equal `PartialEq` shield.
    pub fn record_memory(&mut self) {
        if let Some(s) = &mut self.sharded {
            s.record_memory();
            return;
        }
        let mut mem = crate::metrics::MemoryStats::default();
        for slot in &self.nodes {
            if let Some(app) = &slot.app {
                mem.nodes += 1;
                mem.app_bytes += app.memory_estimate();
            }
        }
        let (peak, current) = crate::metrics::process_rss_kb();
        mem.peak_rss_kb = peak;
        mem.current_rss_kb = current;
        self.metrics.memory = mem;
    }

    /// Mutable access to the seeded RNG (for harness-level sampling that
    /// must stay on the deterministic stream). Sharded runs hand out the
    /// control stream (spawn-time draws), which the event loop never
    /// touches.
    pub fn rng(&mut self) -> &mut StdRng {
        if let Some(s) = &mut self.sharded {
            return s.rng();
        }
        &mut self.rng
    }

    /// Runs until the queue drains or the clock passes `deadline`.
    /// Returns the number of events dispatched.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if let Some(s) = &mut self.sharded {
            return s.run_until(deadline);
        }
        let (wall, before) = self.profile_loop_start();
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (time, kind) = self.queue.pop().expect("peeked");
            self.now = time;
            self.dispatch(kind);
            n += 1;
        }
        // Advance the clock to the deadline even if the queue went quiet.
        if self.now < deadline {
            self.now = deadline;
        }
        self.profile_loop_end(wall, before);
        n
    }

    /// Runs until the event queue is empty.
    pub fn run_to_quiescence(&mut self) -> u64 {
        if let Some(s) = &mut self.sharded {
            return s.run_to_quiescence();
        }
        let (wall, before) = self.profile_loop_start();
        let mut n = 0;
        while let Some((time, kind)) = self.queue.pop() {
            self.now = time;
            self.dispatch(kind);
            n += 1;
        }
        self.profile_loop_end(wall, before);
        n
    }

    /// Run-loop profiling prologue: a wall-clock mark plus the nanos already
    /// attributed to callbacks, so the epilogue can assign the remainder —
    /// queue operations, conn table, dispatch overhead — to `Scheduler`
    /// without per-event clock reads beyond the ones `with_app` makes.
    fn profile_loop_start(&self) -> (std::time::Instant, u64) {
        let t = &self.metrics.timing;
        (
            std::time::Instant::now(),
            t.nanos(Subsystem::App) + t.nanos(Subsystem::TcpPump),
        )
    }

    fn profile_loop_end(&mut self, wall: std::time::Instant, before: u64) {
        let total = wall.elapsed().as_nanos() as u64;
        let t = &self.metrics.timing;
        let callbacks = t.nanos(Subsystem::App) + t.nanos(Subsystem::TcpPump) - before;
        self.metrics
            .timing
            .record(Subsystem::Scheduler, total.saturating_sub(callbacks));
    }

    /// Number of events currently scheduled.
    pub fn pending_events(&self) -> usize {
        if let Some(s) = &self.sharded {
            return s.pending_events();
        }
        self.queue.len()
    }

    /// Mirrors pool and queue statistics into the metrics snapshot.
    fn sync_stats(&mut self) {
        let s = &self.pool.stats;
        self.metrics.pool_hits = s.hits;
        self.metrics.pool_misses = s.misses;
        self.metrics.pool_recycled_bytes = s.recycled_bytes;
        self.metrics.pool_high_water = s.high_water;
        self.metrics.queue_high_water = self.queue.high_water() as u64;
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.metrics.events_processed += 1;
        match kind {
            EventKind::Start { node } => {
                self.with_app(node, |app, ctx| app.on_start(ctx));
            }
            EventKind::ConnAttempt { conn, target } => {
                let initiator = match self.conns.get(&conn.0) {
                    Some(c) => c.initiator,
                    None => return,
                };
                let acceptor =
                    self.listeners.get(&target).copied().filter(|&n| {
                        self.nodes[n.0].alive && !self.nodes[n.0].nat && n != initiator
                    });
                match acceptor {
                    Some(acc) if self.nodes[initiator.0].alive => {
                        let (up_i, down_i) = (
                            self.nodes[initiator.0].upload_bps,
                            self.nodes[initiator.0].download_bps,
                        );
                        let (up_a, down_a) =
                            (self.nodes[acc.0].upload_bps, self.nodes[acc.0].download_bps);
                        {
                            let c = self.conns.get_mut(&conn.0).expect("conn exists");
                            c.acceptor = Some(acc);
                            c.state = ConnState::Open;
                            // Direction 0: initiator -> acceptor.
                            c.bandwidth = [up_i.min(down_a).max(1), up_a.min(down_i).max(1)];
                            c.next_free = [self.now, self.now];
                        }
                        self.metrics.conns_established += 1;
                        let peer_of_acc = self.nodes[initiator.0].external_addr;
                        let peer_of_init = target;
                        self.with_app(acc, |app, ctx| {
                            app.on_connected(ctx, conn, Direction::Inbound, peer_of_acc)
                        });
                        self.with_app(initiator, |app, ctx| {
                            app.on_connected(ctx, conn, Direction::Outbound, peer_of_init)
                        });
                    }
                    _ => {
                        // Failed dial: drop the table entry immediately —
                        // nothing else can reference this connection.
                        self.conns.remove(&conn.0);
                        self.metrics.conns_failed += 1;
                        if self.nodes[initiator.0].alive {
                            self.with_app(initiator, |app, ctx| app.on_connect_failed(ctx, conn));
                        }
                    }
                }
            }
            EventKind::Data { conn, to, data } => {
                // A Data event only exists if the connection was Open at
                // send time; deliver it even if a close landed since (bytes
                // already in flight arrive before the FIN, like TCP). Only
                // a dead receiver drops data.
                let deliver = match self.conns.get(&conn.0) {
                    Some(_) => self.nodes[to.0].alive,
                    None => false,
                };
                if deliver {
                    self.metrics.bytes_delivered += data.len() as u64;
                    self.with_app(to, |app, ctx| app.on_data(ctx, conn, &data));
                } else {
                    self.metrics.bytes_dropped += data.len() as u64;
                }
                self.pool.recycle(data);
            }
            EventKind::CloseNotify { conn, to } => {
                // Reap the table entry: data queued before the close was
                // ordered ahead of this FIN on the same direction, and
                // reverse-direction stragglers are dropped like data in
                // flight at a TCP reset. Month-scale runs make millions of
                // short-lived connections; keeping dead entries would be a
                // leak.
                if self.conns.remove(&conn.0).is_none() {
                    return;
                }
                self.metrics.conns_closed += 1;
                if self.nodes[to.0].alive {
                    self.with_app(to, |app, ctx| app.on_closed(ctx, conn));
                }
            }
            EventKind::Timer { node, token } => {
                if self.nodes[node.0].alive {
                    self.metrics.timers_fired += 1;
                    self.with_app(node, |app, ctx| app.on_timer(ctx, token));
                }
            }
            EventKind::Reset { conn, to } => {
                // Spontaneous reset: the table entry was reaped at the
                // moment the reset fired; this event only carries the
                // notification to one endpoint.
                if self.nodes[to.0].alive {
                    self.with_app(to, |app, ctx| app.on_closed(ctx, conn));
                }
            }
            EventKind::ChurnDown { node } => self.churn_down(node),
            EventKind::ChurnUp { node } => self.churn_up(node),
        }
        self.sync_stats();
    }

    /// Runs `f` against a node's app with a fresh command buffer, then
    /// applies the buffered actions.
    /// Harness entry point: runs `f` against a node's app with a live
    /// [`Ctx`], then applies any actions the app requested (sends,
    /// connects, timers). This is how instrumented experiments drive an
    /// app from outside the event loop — e.g. issuing a search on a
    /// crawler node and draining its observations. Returns `None` if the
    /// node is offline.
    pub fn with_node<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn App, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        if let Some(s) = &mut self.sharded {
            return s.with_node(node, f);
        }
        if !self.nodes[node.0].alive {
            return None;
        }
        let mut app = self.nodes[node.0].app.take()?;
        let mut actions = Vec::new();
        let r;
        let start = std::time::Instant::now();
        {
            let slot = &self.nodes[node.0];
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_addr: slot.local_addr,
                external_addr: slot.external_addr,
                rng: &mut self.rng,
                actions: &mut actions,
                next_conn: &mut self.next_conn_id,
                pool: &mut self.pool,
                profile: &mut self.metrics.timing,
                registry: &mut self.metrics.telemetry,
                telemetry: &mut self.telemetry,
            };
            r = f(app.as_mut(), &mut ctx);
        }
        let mid = std::time::Instant::now();
        self.metrics
            .timing
            .record(Subsystem::App, (mid - start).as_nanos() as u64);
        self.nodes[node.0].app = Some(app);
        self.apply(node, actions);
        self.metrics
            .timing
            .record(Subsystem::TcpPump, mid.elapsed().as_nanos() as u64);
        self.sync_stats();
        Some(r)
    }

    /// Dispatches [`App::on_barrier`] to one node: the harness's sim-time
    /// barrier seam. Call after `run_until` reaches a quiescent point so
    /// apps with deferred work (the batched scan service) settle it before
    /// the harness inspects their state. No-op for offline nodes and for
    /// apps with the default `on_barrier`.
    pub fn barrier(&mut self, node: NodeId) {
        self.with_node(node, |app, ctx| app.on_barrier(ctx));
    }

    fn with_app<F: FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)>(&mut self, node: NodeId, f: F) {
        let mut app = match self.nodes[node.0].app.take() {
            Some(a) => a,
            None => return, // re-entrant dispatch to a node being dropped
        };
        let mut actions = Vec::new();
        let start = std::time::Instant::now();
        {
            let slot = &self.nodes[node.0];
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_addr: slot.local_addr,
                external_addr: slot.external_addr,
                rng: &mut self.rng,
                actions: &mut actions,
                next_conn: &mut self.next_conn_id,
                pool: &mut self.pool,
                profile: &mut self.metrics.timing,
                registry: &mut self.metrics.telemetry,
                telemetry: &mut self.telemetry,
            };
            f(&mut app, &mut ctx);
        }
        let mid = std::time::Instant::now();
        self.metrics
            .timing
            .record(Subsystem::App, (mid - start).as_nanos() as u64);
        self.nodes[node.0].app = Some(app);
        self.apply(node, actions);
        self.metrics
            .timing
            .record(Subsystem::TcpPump, mid.elapsed().as_nanos() as u64);
    }

    fn apply(&mut self, node: NodeId, actions: Vec<Action>) {
        for act in actions {
            match act {
                Action::Connect { conn, target } => {
                    let mut latency = SimDuration::from_micros(
                        self.rng
                            .gen_range(self.config.latency_us.0..=self.config.latency_us.1),
                    );
                    let mult = self.config.faults.latency_mult(&mut self.rng);
                    if mult > 1 {
                        self.metrics.faults_latency_spikes += 1;
                        self.emit_fault(FaultKind::LatencySpike);
                        latency = SimDuration::from_micros(latency.as_micros() * mult);
                    }
                    self.conns.insert(
                        conn.0,
                        Conn {
                            initiator: node,
                            acceptor: None,
                            latency,
                            bandwidth: [1, 1],
                            next_free: [self.now, self.now],
                            state: ConnState::Pending,
                        },
                    );
                    self.queue
                        .push(self.now + latency, EventKind::ConnAttempt { conn, target });
                }
                Action::Send { conn, data } => {
                    self.send_bytes(node, conn, data);
                }
                Action::Close { conn, .. } => {
                    self.close_conn(node, conn);
                }
                Action::Timer { delay, token } => {
                    self.queue
                        .push(self.now + delay, EventKind::Timer { node, token });
                }
                Action::Shutdown => {
                    self.shutdown_node(node);
                }
            }
        }
    }

    fn send_bytes(&mut self, from: NodeId, conn: ConnId, data: Vec<u8>) {
        let (to, arrival_base) = {
            let c = match self.conns.get_mut(&conn.0) {
                Some(c) => c,
                None => {
                    self.metrics.bytes_dropped += data.len() as u64;
                    self.pool.release(data);
                    return;
                }
            };
            if c.state != ConnState::Open {
                self.metrics.bytes_dropped += data.len() as u64;
                self.pool.release(data);
                return;
            }
            let acceptor = c.acceptor.expect("open conn has acceptor");
            let dir = if from == c.initiator { 0 } else { 1 };
            let to = if dir == 0 { acceptor } else { c.initiator };
            let start = c.next_free[dir].max(self.now);
            let transmit =
                SimDuration::from_micros(data.len() as u64 * 1_000_000 / c.bandwidth[dir]);
            c.next_free[dir] = start + transmit;
            (to, start + transmit + c.latency)
        };
        // Spontaneous reset (fault plan): the connection dies at this
        // write. Both endpoints hear `on_closed` — the sender immediately
        // (RST on write), the peer after one latency — and everything in
        // flight is lost, this send included.
        if self.config.faults.send_resets(&mut self.rng) {
            let latency = match self.conns.remove(&conn.0) {
                Some(c) => c.latency,
                None => return,
            };
            self.metrics.faults_resets += 1;
            self.emit_fault(FaultKind::Reset);
            self.metrics.conns_closed += 1;
            self.metrics.bytes_dropped += data.len() as u64;
            self.pool.release(data);
            self.queue
                .push(self.now, EventKind::Reset { conn, to: from });
            self.queue
                .push(self.now + latency, EventKind::Reset { conn, to });
            return;
        }
        match self.config.mss {
            Some(mss) if data.len() > mss => {
                // Zero-copy fan-out: every fragment is a window into one
                // shared buffer, spread one microsecond apart to preserve
                // order. The buffer returns to the pool when the last
                // fragment is delivered.
                let total = data.len();
                let buf = Arc::new(data);
                let mut t = arrival_base;
                let mut start = 0;
                while start < total {
                    let end = (start + mss).min(total);
                    let payload = Payload::Shared {
                        buf: buf.clone(),
                        start,
                        end,
                    };
                    if let Some(payload) = self.fault_chunk(payload) {
                        self.queue.push(
                            t,
                            EventKind::Data {
                                conn,
                                to,
                                data: payload,
                            },
                        );
                    }
                    t += SimDuration::from_micros(1);
                    start = end;
                }
            }
            _ => {
                if let Some(payload) = self.fault_chunk(Payload::Owned(data)) {
                    self.queue.push(
                        arrival_base,
                        EventKind::Data {
                            conn,
                            to,
                            data: payload,
                        },
                    );
                }
            }
        }
    }

    /// Applies the fault plan's sampled fate to one chunk, returning the
    /// (possibly mutated) payload to deliver, or `None` when it is lost.
    /// The fault-free fast path performs no RNG draw.
    fn fault_chunk(&mut self, payload: Payload) -> Option<Payload> {
        let faults = self.config.faults;
        if faults.chunk_loss == 0.0 && faults.corrupt == 0.0 {
            return Some(payload);
        }
        let drop_chunk = |sim: &mut Self, payload: Payload| {
            sim.metrics.faults_chunks_dropped += 1;
            sim.emit_fault(FaultKind::ChunkDrop);
            sim.metrics.bytes_dropped += payload.len() as u64;
            if let Payload::Owned(v) = payload {
                sim.pool.release(v);
            }
        };
        match faults.chunk_fate(&mut self.rng) {
            ChunkFate::Deliver => Some(payload),
            ChunkFate::Drop => {
                drop_chunk(self, payload);
                None
            }
            ChunkFate::Truncate => {
                let len = payload.len();
                let keep = len / 2;
                if keep == 0 {
                    drop_chunk(self, payload);
                    return None;
                }
                self.metrics.faults_chunks_corrupted += 1;
                self.emit_fault(FaultKind::ChunkTruncate);
                self.metrics.bytes_dropped += (len - keep) as u64;
                Some(match payload {
                    Payload::Owned(mut v) => {
                        v.truncate(keep);
                        Payload::Owned(v)
                    }
                    Payload::Shared { buf, start, .. } => Payload::Shared {
                        buf,
                        start,
                        end: start + keep,
                    },
                })
            }
            ChunkFate::BitFlip => {
                let len = payload.len();
                if len == 0 {
                    return Some(payload);
                }
                self.metrics.faults_chunks_corrupted += 1;
                self.emit_fault(FaultKind::ChunkBitFlip);
                let bit = self.rng.gen_range(0..len * 8);
                Some(match payload {
                    Payload::Owned(mut v) => {
                        v[bit / 8] ^= 1 << (bit % 8);
                        Payload::Owned(v)
                    }
                    Payload::Shared { buf, start, end } => {
                        let mut v = buf[start..end].to_vec();
                        v[bit / 8] ^= 1 << (bit % 8);
                        Payload::Owned(v)
                    }
                })
            }
        }
    }

    fn close_conn(&mut self, closer: NodeId, conn: ConnId) {
        let (peer, when) = {
            let c = match self.conns.get_mut(&conn.0) {
                Some(c) => c,
                None => return,
            };
            match c.state {
                ConnState::Closed => return,
                ConnState::Pending => {
                    // Connection abandoned before establishment; the
                    // pending ConnAttempt event will find no entry.
                    self.conns.remove(&conn.0);
                    return;
                }
                ConnState::Open => {}
            }
            let acceptor = c.acceptor.expect("open conn has acceptor");
            let dir = if closer == c.initiator { 0 } else { 1 };
            let peer = if dir == 0 { acceptor } else { c.initiator };
            // FIN is ordered after any queued data on this direction.
            let when = c.next_free[dir].max(self.now) + c.latency;
            c.state = ConnState::Closed;
            (peer, when)
        };
        self.queue
            .push(when, EventKind::CloseNotify { conn, to: peer });
    }

    fn shutdown_node(&mut self, node: NodeId) {
        if !self.nodes[node.0].alive {
            return;
        }
        self.nodes[node.0].alive = false;
        self.metrics.nodes_stopped += 1;
        self.listeners.remove(&self.nodes[node.0].external_addr);
        // Close every open connection this node participates in.
        let mut involved: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.state == ConnState::Open && (c.initiator == node || c.acceptor == Some(node))
            })
            .map(|(&id, _)| id)
            .collect();
        // HashMap iteration order is process-random; sort so close events
        // schedule in a reproducible order.
        involved.sort_unstable();
        for id in involved {
            self.close_conn(node, ConnId(id));
        }
    }

    /// Runs a callback against a node's app but discards any actions it
    /// buffers — the "host lost power" semantics of churn death, where the
    /// app's bookkeeping must update but nothing it tries to send leaves
    /// the machine.
    fn notify_app_discard<F: FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)>(
        &mut self,
        node: NodeId,
        f: F,
    ) {
        let mut app = match self.nodes[node.0].app.take() {
            Some(a) => a,
            None => return,
        };
        let mut actions = Vec::new();
        {
            let slot = &self.nodes[node.0];
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_addr: slot.local_addr,
                external_addr: slot.external_addr,
                rng: &mut self.rng,
                actions: &mut actions,
                next_conn: &mut self.next_conn_id,
                pool: &mut self.pool,
                profile: &mut self.metrics.timing,
                registry: &mut self.metrics.telemetry,
                telemetry: &mut self.telemetry,
            };
            f(&mut app, &mut ctx);
        }
        self.nodes[node.0].app = Some(app);
    }

    /// A churn session ends: the node dies mid-whatever-it-was-doing.
    /// Open connections close toward their peers (FIN after queued data,
    /// like `shutdown_node`), and the dying app is told about every
    /// connection it had — with its reactions discarded — so its state is
    /// consistent when the session restarts.
    fn churn_down(&mut self, node: NodeId) {
        if !self.nodes[node.0].alive {
            // The app shut itself down in the meantime; that death is
            // permanent and the churn session does not resurrect it.
            return;
        }
        self.metrics.faults_churn_downs += 1;
        if self.telemetry.enabled(EventCategory::Churn) {
            self.telemetry.emit(TelemetryEvent::new(
                self.now,
                EventBody::ChurnDown {
                    node: node.0 as u64,
                },
            ));
        }
        // Partition this node's connections: established ones get a close
        // handshake, dials still in flight are abandoned.
        let mut open = Vec::new();
        let mut pending = Vec::new();
        for (&id, c) in &self.conns {
            match c.state {
                ConnState::Open if c.initiator == node || c.acceptor == Some(node) => {
                    open.push(ConnId(id));
                }
                ConnState::Pending if c.initiator == node => pending.push(ConnId(id)),
                _ => {}
            }
        }
        // HashMap iteration order is process-random; sort so the close
        // events and app notifications replay identically run to run.
        open.sort_unstable_by_key(|c| c.0);
        pending.sort_unstable_by_key(|c| c.0);
        for conn in &open {
            self.close_conn(node, *conn);
        }
        for conn in &pending {
            // The ConnAttempt event will find no entry and do nothing.
            self.conns.remove(&conn.0);
            self.metrics.conns_failed += 1;
        }
        self.nodes[node.0].alive = false;
        self.metrics.nodes_stopped += 1;
        self.listeners.remove(&self.nodes[node.0].external_addr);
        for conn in open {
            self.notify_app_discard(node, |app, ctx| app.on_closed(ctx, conn));
        }
        for conn in pending {
            self.notify_app_discard(node, |app, ctx| app.on_connect_failed(ctx, conn));
        }
        let churn = self.config.faults.churn.expect("churn event implies plan");
        let down = self
            .rng
            .gen_range(churn.downtime_secs.0..=churn.downtime_secs.1);
        self.queue.push(
            self.now + SimDuration::from_secs(down),
            EventKind::ChurnUp { node },
        );
    }

    /// A churn session begins: the node comes back online, re-registers
    /// its listener and restarts its app (`on_start` re-bootstraps), then
    /// schedules the next session end.
    fn churn_up(&mut self, node: NodeId) {
        if self.nodes[node.0].alive {
            return;
        }
        self.nodes[node.0].alive = true;
        self.metrics.faults_churn_ups += 1;
        if self.telemetry.enabled(EventCategory::Churn) {
            self.telemetry.emit(TelemetryEvent::new(
                self.now,
                EventBody::ChurnUp {
                    node: node.0 as u64,
                },
            ));
        }
        if self.nodes[node.0].listener {
            self.listeners
                .insert(self.nodes[node.0].external_addr, node);
        }
        self.queue.push(self.now, EventKind::Start { node });
        let churn = self.config.faults.churn.expect("churn event implies plan");
        let up = self
            .rng
            .gen_range(churn.uptime_secs.0..=churn.uptime_secs.1);
        self.queue.push(
            self.now + SimDuration::from_secs(up),
            EventKind::ChurnDown { node },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Log {
        events: Vec<String>,
    }

    type SharedLog = Arc<Mutex<Log>>;

    struct Echo {
        log: SharedLog,
    }

    impl App for Echo {
        fn on_connected(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, dir: Direction, _p: HostAddr) {
            self.log
                .lock()
                .unwrap()
                .events
                .push(format!("server connected {dir:?}"));
        }
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            self.log
                .lock()
                .unwrap()
                .events
                .push(format!("server got {}", String::from_utf8_lossy(data)));
            ctx.send(conn, data);
        }
        fn on_closed(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {
            self.log.lock().unwrap().events.push("server closed".into());
        }
    }

    struct Client {
        log: SharedLog,
        server: HostAddr,
        payload: Vec<u8>,
    }

    impl App for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.server);
        }
        fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _d: Direction, _p: HostAddr) {
            ctx.send(conn, &self.payload.clone());
        }
        fn on_connect_failed(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {
            self.log
                .lock()
                .unwrap()
                .events
                .push("client connect failed".into());
        }
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            self.log
                .lock()
                .unwrap()
                .events
                .push(format!("client got {}", String::from_utf8_lossy(data)));
            ctx.close(conn);
        }
    }

    fn new_log() -> SharedLog {
        Arc::new(Mutex::new(Log::default()))
    }

    #[test]
    fn echo_roundtrip_with_close() {
        let log = new_log();
        let mut sim = Simulator::new(SimConfig::default(), 1);
        let server = sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Echo { log: log.clone() }),
        );
        let server_addr = sim.node_addr(server);
        sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                log: log.clone(),
                server: server_addr,
                payload: b"ping".to_vec(),
            }),
        );
        sim.run_to_quiescence();
        let events = log.lock().unwrap().events.clone();
        assert_eq!(
            events,
            vec![
                "server connected Inbound",
                "server got ping",
                "client got ping",
                "server closed"
            ]
        );
        assert_eq!(sim.metrics().conns_established, 1);
        assert_eq!(sim.metrics().conns_closed, 1);
    }

    #[test]
    fn connect_to_nobody_fails() {
        let log = new_log();
        let mut sim = Simulator::new(SimConfig::default(), 2);
        let phantom = HostAddr::new(std::net::Ipv4Addr::new(9, 9, 9, 9), 1234);
        sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                log: log.clone(),
                server: phantom,
                payload: vec![],
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(log.lock().unwrap().events, vec!["client connect failed"]);
        assert_eq!(sim.metrics().conns_failed, 1);
    }

    #[test]
    fn nat_node_is_not_dialable_but_can_dial() {
        let log = new_log();
        let mut sim = Simulator::new(SimConfig::default(), 3);
        // NAT "server": listener must not register.
        let nat = sim.spawn(
            NodeSpec::nat().listen(6346),
            Box::new(Echo { log: log.clone() }),
        );
        let nat_addr = sim.node_addr(nat);
        sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                log: log.clone(),
                server: nat_addr,
                payload: b"x".to_vec(),
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(log.lock().unwrap().events, vec!["client connect failed"]);
        // And the NAT node's local address is private while external is not.
        assert!(sim.node_local_addr(nat).is_private());
        assert!(!sim.node_addr(nat).is_private());

        // NAT node can dial out.
        let log2 = new_log();
        let mut sim2 = Simulator::new(SimConfig::default(), 4);
        let server = sim2.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Echo { log: log2.clone() }),
        );
        let server_addr = sim2.node_addr(server);
        sim2.spawn(
            NodeSpec::nat(),
            Box::new(Client {
                log: log2.clone(),
                server: server_addr,
                payload: b"y".to_vec(),
            }),
        );
        sim2.run_to_quiescence();
        assert!(log2
            .lock()
            .unwrap()
            .events
            .iter()
            .any(|e| e == "client got y"));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let log = new_log();
            let mut sim = Simulator::new(SimConfig::default(), seed);
            let server = sim.spawn(
                NodeSpec::public().listen(1),
                Box::new(Echo { log: log.clone() }),
            );
            let addr = sim.node_addr(server);
            for i in 0..10 {
                sim.spawn(
                    NodeSpec::public(),
                    Box::new(Client {
                        log: log.clone(),
                        server: addr,
                        payload: format!("m{i}").into_bytes(),
                    }),
                );
            }
            sim.run_to_quiescence();
            let events = log.lock().unwrap().events.clone();
            (events, sim.metrics().clone(), sim.now())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn bandwidth_serializes_transfers() {
        // A 100 KB send on a 10 KB/s uplink takes ≥ 10 simulated seconds.
        struct Sender {
            server: HostAddr,
        }
        impl App for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.server);
            }
            fn on_connected(
                &mut self,
                ctx: &mut Ctx<'_>,
                conn: ConnId,
                _d: Direction,
                _p: HostAddr,
            ) {
                ctx.send(conn, &vec![0u8; 100_000]);
            }
        }
        struct Sink {
            done_at: SharedDone,
        }
        type SharedDone = Arc<Mutex<Option<SimTime>>>;
        impl App for Sink {
            fn on_data(&mut self, ctx: &mut Ctx<'_>, _c: ConnId, _d: &[u8]) {
                *self.done_at.lock().unwrap() = Some(ctx.now());
            }
        }
        let done: SharedDone = Arc::new(Mutex::new(None));
        let mut sim = Simulator::new(SimConfig::default(), 5);
        let sink = sim.spawn(
            NodeSpec::public().listen(80).download(1_000_000),
            Box::new(Sink {
                done_at: done.clone(),
            }),
        );
        let addr = sim.node_addr(sink);
        sim.spawn(
            NodeSpec::public().upload(10_000),
            Box::new(Sender { server: addr }),
        );
        sim.run_to_quiescence();
        let t = done.lock().unwrap().expect("delivered");
        assert!(t >= SimTime::from_secs(10), "arrived too fast: {t}");
        assert!(t <= SimTime::from_secs(11), "arrived too slow: {t}");
    }

    #[test]
    fn mss_fragments_but_preserves_order_and_content() {
        struct Collect {
            got: Arc<Mutex<Vec<u8>>>,
            chunks: Arc<Mutex<usize>>,
        }
        impl App for Collect {
            fn on_data(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, data: &[u8]) {
                self.got.lock().unwrap().extend_from_slice(data);
                *self.chunks.lock().unwrap() += 1;
            }
        }
        struct Send1K {
            server: HostAddr,
        }
        impl App for Send1K {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.server);
            }
            fn on_connected(
                &mut self,
                ctx: &mut Ctx<'_>,
                conn: ConnId,
                _d: Direction,
                _p: HostAddr,
            ) {
                let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
                ctx.send(conn, &payload);
            }
        }
        let got = Arc::new(Mutex::new(Vec::new()));
        let chunks = Arc::new(Mutex::new(0usize));
        let mut sim = Simulator::new(
            SimConfig {
                mss: Some(100),
                ..SimConfig::default()
            },
            6,
        );
        let sink = sim.spawn(
            NodeSpec::public().listen(80),
            Box::new(Collect {
                got: got.clone(),
                chunks: chunks.clone(),
            }),
        );
        let addr = sim.node_addr(sink);
        sim.spawn(NodeSpec::public(), Box::new(Send1K { server: addr }));
        sim.run_to_quiescence();
        let expected: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(*got.lock().unwrap(), expected);
        assert_eq!(*chunks.lock().unwrap(), 10);
    }

    #[test]
    fn stop_node_closes_peer_connections() {
        let log = new_log();
        let mut sim = Simulator::new(SimConfig::default(), 7);
        let server = sim.spawn(
            NodeSpec::public().listen(1),
            Box::new(Echo { log: log.clone() }),
        );
        let addr = sim.node_addr(server);
        struct Idle {
            server: HostAddr,
            closed: Arc<Mutex<bool>>,
        }
        impl App for Idle {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.server);
            }
            fn on_closed(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId) {
                *self.closed.lock().unwrap() = true;
            }
        }
        let closed = Arc::new(Mutex::new(false));
        sim.spawn(
            NodeSpec::public(),
            Box::new(Idle {
                server: addr,
                closed: closed.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.is_alive(server));
        sim.stop_node(server);
        sim.run_to_quiescence();
        assert!(!sim.is_alive(server));
        assert!(*closed.lock().unwrap(), "peer should observe close");
        // Dialing the stopped node now fails.
        let log3 = new_log();
        sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                log: log3.clone(),
                server: addr,
                payload: vec![],
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(log3.lock().unwrap().events, vec!["client connect failed"]);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl App for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(3), 3);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(2), 2);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.lock().unwrap().push(token);
            }
        }
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(SimConfig::default(), 8);
        sim.spawn(
            NodeSpec::public(),
            Box::new(Timers {
                fired: fired.clone(),
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(*fired.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(sim.metrics().timers_fired, 3);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Simulator::new(SimConfig::default(), 9);
        sim.run_until(SimTime::from_days(2));
        assert_eq!(sim.now(), SimTime::from_days(2));
    }

    #[test]
    fn self_dial_fails() {
        // A node dialing its own listen address must not connect to itself.
        struct SelfDial {
            failed: Arc<Mutex<bool>>,
        }
        impl App for SelfDial {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.external_addr();
                ctx.connect(me);
            }
            fn on_connect_failed(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId) {
                *self.failed.lock().unwrap() = true;
            }
        }
        let failed = Arc::new(Mutex::new(false));
        let mut sim = Simulator::new(SimConfig::default(), 10);
        sim.spawn(
            NodeSpec::public().listen(5),
            Box::new(SelfDial {
                failed: failed.clone(),
            }),
        );
        sim.run_to_quiescence();
        assert!(*failed.lock().unwrap());
    }
}
