//! Deterministic fault injection: the network pathology model.
//!
//! The IMC 2006 crawl ran against a hostile internet — dead hosts, NAT
//! timeouts, transfers that reset mid-body, month-long churn — while the
//! simulator's default delivery is flawless. A [`FaultPlan`] hung off
//! [`crate::SimConfig`] turns selected pathologies back on: per-chunk loss,
//! spontaneous connection resets, latency spikes, payload corruption
//! (truncation or bit-flips) and node churn sessions with up/down
//! lifetimes.
//!
//! Determinism contract: every fault decision is drawn from the simulator's
//! single seeded `StdRng`, so the same seed and the same plan reproduce the
//! same faults bit-for-bit. Crucially, the disabled default draws nothing:
//! each sampling helper is gated on its probability being nonzero, so
//! [`FaultPlan::none()`] leaves the RNG stream — and therefore the entire
//! event trace — byte-identical to a simulator without the fault layer
//! (asserted by `crates/core/tests/fault_free_baseline.rs`).

use rand::rngs::StdRng;
use rand::Rng;

/// Churn sessions: a fraction of spawned nodes cycle between up and down
/// states with uniformly sampled lifetimes. Nodes spawned with
/// [`crate::NodeSpec::durable`] (the crawler, always-on infrastructure) are
/// exempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Fraction of (non-durable) spawned nodes enrolled in churn.
    pub fraction: f64,
    /// Uniform uptime range in seconds, sampled per session.
    pub uptime_secs: (u64, u64),
    /// Uniform downtime range in seconds, sampled per session.
    pub downtime_secs: (u64, u64),
}

/// What happens to one delivered chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkFate {
    Deliver,
    /// Dropped on the floor; the receiver never sees these bytes.
    Drop,
    /// Delivered with its tail cut off.
    Truncate,
    /// Delivered with one bit flipped.
    BitFlip,
}

/// A seed-deterministic fault-injection plan. All probabilities are per
/// sampling opportunity (per chunk, per send, per connection, per node) and
/// `0.0` disables that fault class without consuming any randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a delivered chunk is silently dropped.
    pub chunk_loss: f64,
    /// Probability, per send, that the connection spontaneously resets:
    /// both endpoints get `on_closed`, in-flight data is discarded.
    pub reset: f64,
    /// Probability a delivered chunk is corrupted (truncated or bit-flipped
    /// with equal odds).
    pub corrupt: f64,
    /// Probability a new connection's latency is multiplied by
    /// `latency_spike_mult` (congested/overloaded path).
    pub latency_spike: f64,
    /// Latency multiplier applied when a spike fires.
    pub latency_spike_mult: u64,
    /// Node churn sessions; `None` keeps every node up for the whole run.
    pub churn: Option<ChurnSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults: the default, byte-identical to a fault-free simulator.
    pub const fn none() -> Self {
        FaultPlan {
            chunk_loss: 0.0,
            reset: 0.0,
            corrupt: 0.0,
            latency_spike: 0.0,
            latency_spike_mult: 1,
            churn: None,
        }
    }

    /// Occasional pathology: a flaky-but-usable 2006 residential internet.
    pub fn mild() -> Self {
        FaultPlan {
            chunk_loss: 0.005,
            reset: 0.002,
            corrupt: 0.002,
            latency_spike: 0.01,
            latency_spike_mult: 8,
            churn: Some(ChurnSpec {
                fraction: 0.10,
                uptime_secs: (6 * 3600, 18 * 3600),
                downtime_secs: (600, 3600),
            }),
        }
    }

    /// Heavy pathology: loss, resets and churn dialed to stress-test every
    /// failure path the crawlers have.
    pub fn harsh() -> Self {
        FaultPlan {
            chunk_loss: 0.02,
            reset: 0.01,
            corrupt: 0.01,
            latency_spike: 0.05,
            latency_spike_mult: 20,
            churn: Some(ChurnSpec {
                fraction: 0.30,
                uptime_secs: (3600, 6 * 3600),
                downtime_secs: (300, 1800),
            }),
        }
    }

    /// Named profile lookup (the `P2PMAL_FAULTS` env values).
    pub fn from_profile(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "mild" => Some(Self::mild()),
            "harsh" => Some(Self::harsh()),
            _ => None,
        }
    }

    /// True when no fault class is active (the no-extra-RNG-draws path).
    pub fn is_none(&self) -> bool {
        self.chunk_loss == 0.0
            && self.reset == 0.0
            && self.corrupt == 0.0
            && self.latency_spike == 0.0
            && self.churn.is_none()
    }

    /// Samples the fate of one chunk. Draws nothing for disabled classes.
    pub(crate) fn chunk_fate(&self, rng: &mut StdRng) -> ChunkFate {
        if self.chunk_loss > 0.0 && rng.gen_bool(self.chunk_loss) {
            return ChunkFate::Drop;
        }
        if self.corrupt > 0.0 && rng.gen_bool(self.corrupt) {
            return if rng.gen_bool(0.5) {
                ChunkFate::Truncate
            } else {
                ChunkFate::BitFlip
            };
        }
        ChunkFate::Deliver
    }

    /// Samples whether this send resets the connection.
    pub(crate) fn send_resets(&self, rng: &mut StdRng) -> bool {
        self.reset > 0.0 && rng.gen_bool(self.reset)
    }

    /// Latency multiplier for a new connection (1 = no spike).
    pub(crate) fn latency_mult(&self, rng: &mut StdRng) -> u64 {
        if self.latency_spike > 0.0 && rng.gen_bool(self.latency_spike) {
            self.latency_spike_mult.max(1)
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_draws_nothing() {
        // Two RNGs from the same seed: one consulted by a none-plan, one
        // untouched. Their next draws must agree, proving the disabled plan
        // consumed zero randomness.
        let plan = FaultPlan::none();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(plan.chunk_fate(&mut a), ChunkFate::Deliver);
            assert!(!plan.send_resets(&mut a));
            assert_eq!(plan.latency_mult(&mut a), 1);
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn profiles_resolve() {
        assert!(FaultPlan::from_profile("none").unwrap().is_none());
        assert!(!FaultPlan::from_profile("mild").unwrap().is_none());
        assert!(!FaultPlan::from_profile("harsh").unwrap().is_none());
        assert!(FaultPlan::from_profile("bogus").is_none());
    }

    #[test]
    fn harsh_produces_every_fate() {
        let plan = FaultPlan::harsh();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            match plan.chunk_fate(&mut rng) {
                ChunkFate::Deliver => seen[0] = true,
                ChunkFate::Drop => seen[1] = true,
                ChunkFate::Truncate => seen[2] = true,
                ChunkFate::BitFlip => seen[3] = true,
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let plan = FaultPlan::harsh();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| plan.chunk_fate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
