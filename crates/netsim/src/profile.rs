//! Lightweight per-subsystem wall-time profiler.
//!
//! The simulator spends its life in a handful of places: popping the event
//! queue, running app callbacks, pumping bytes through simulated TCP, and —
//! inside app callbacks — scanning download bodies and matching queries
//! against share libraries. This module gives each a named bucket of
//! wall-clock nanoseconds so perf work on the full study can see where the
//! time actually goes instead of inferring it from microbenches.
//!
//! Wall-clock time is *diagnostics, not simulation state*: two runs of the
//! same seed produce identical event trajectories but different timings.
//! [`SubsystemProfile`] therefore compares equal to everything, so metric
//! snapshots stay usable in determinism assertions.

use std::time::Instant;

/// Number of profiled subsystems (buckets in a [`SubsystemProfile`]).
pub const SUBSYSTEM_COUNT: usize = 7;

/// The profiled buckets.
///
/// `Scheduler`, `App` and `TcpPump` partition the run loop: queue + conn
/// table + dispatch overhead, app callback bodies, and buffered-action
/// application (dominated by the byte pump). `Scan`, `ScanMerge` and
/// `QueryMatch` are *nested* inside `App` — apps opt in via
/// [`crate::Ctx::time`] / [`crate::Ctx::record_profile`] around their
/// scan-pipeline and query-matching work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Event queue pop/push, connection table, dispatch overhead.
    Scheduler = 0,
    /// App callback bodies (`on_start`, `on_data`, `on_timer`, ...).
    App = 1,
    /// Applying buffered actions: the simulated-TCP byte pump.
    TcpPump = 2,
    /// Scan-pipeline work: hashing + signature engine, including the
    /// parallel batch phases of the scan service (nested inside `App`).
    Scan = 3,
    /// Deterministic in-order merge of batched scan verdicts back into the
    /// crawl log at a sim-time barrier (nested inside `App`).
    ScanMerge = 4,
    /// Query matching against share libraries (nested inside `App`).
    QueryMatch = 5,
    /// Sharded runs only: cross-shard mailbox exchange, window sequencing
    /// and barrier synchronization (including worker idle time at the
    /// barriers, so per-shard sums can exceed the wall clock). Zero on
    /// serial runs.
    ShardExchange = 6,
}

impl Subsystem {
    /// Every bucket, in index order.
    pub const ALL: [Subsystem; SUBSYSTEM_COUNT] = [
        Subsystem::Scheduler,
        Subsystem::App,
        Subsystem::TcpPump,
        Subsystem::Scan,
        Subsystem::ScanMerge,
        Subsystem::QueryMatch,
        Subsystem::ShardExchange,
    ];

    /// Stable snake_case label (trace lines, JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Scheduler => "scheduler",
            Subsystem::App => "app",
            Subsystem::TcpPump => "tcp_pump",
            Subsystem::Scan => "scan",
            Subsystem::ScanMerge => "scan_merge",
            Subsystem::QueryMatch => "query_match",
            Subsystem::ShardExchange => "shard_exchange",
        }
    }
}

/// Accumulated wall-clock nanoseconds and call counts per subsystem.
#[derive(Debug, Default, Clone)]
pub struct SubsystemProfile {
    nanos: [u64; SUBSYSTEM_COUNT],
    calls: [u64; SUBSYSTEM_COUNT],
}

impl SubsystemProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one timed interval to a bucket.
    #[inline]
    pub fn record(&mut self, s: Subsystem, nanos: u64) {
        self.nanos[s as usize] += nanos;
        self.calls[s as usize] += 1;
    }

    /// Times `f` into bucket `s`.
    #[inline]
    pub fn time<R>(&mut self, s: Subsystem, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record(s, start.elapsed().as_nanos() as u64);
        r
    }

    /// Accumulated nanoseconds in bucket `s`.
    pub fn nanos(&self, s: Subsystem) -> u64 {
        self.nanos[s as usize]
    }

    /// Number of intervals recorded into bucket `s`.
    pub fn calls(&self, s: Subsystem) -> u64 {
        self.calls[s as usize]
    }

    /// Nanoseconds across the disjoint run-loop buckets (excludes the
    /// nested `Scan`/`ScanMerge`/`QueryMatch`, which are already inside
    /// `App`).
    pub fn total_nanos(&self) -> u64 {
        self.nanos(Subsystem::Scheduler)
            + self.nanos(Subsystem::App)
            + self.nanos(Subsystem::TcpPump)
    }

    /// Folds another profile into this one (bucket-wise sums).
    pub fn merge(&mut self, other: &SubsystemProfile) {
        for i in 0..SUBSYSTEM_COUNT {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|&c| c == 0)
    }

    /// Compact one-line rendering, e.g. for `P2PMAL_TRACE` day lines:
    /// `sched 1.2s app 3.4s pump 0.5s scan 0.2s merge 0.0s match 0.1s
    /// xchg 0.0s`.
    pub fn render_compact(&self) -> String {
        let secs = |s: Subsystem| self.nanos(s) as f64 / 1e9;
        format!(
            "sched {:.1}s app {:.1}s pump {:.1}s scan {:.1}s merge {:.1}s match {:.1}s xchg {:.1}s",
            secs(Subsystem::Scheduler),
            secs(Subsystem::App),
            secs(Subsystem::TcpPump),
            secs(Subsystem::Scan),
            secs(Subsystem::ScanMerge),
            secs(Subsystem::QueryMatch),
            secs(Subsystem::ShardExchange),
        )
    }
}

/// Wall-clock never participates in determinism checks: every profile is
/// "equal" to every other, so `SimMetrics` snapshots from identical-seed
/// runs still compare equal even though their timings differ.
impl PartialEq for SubsystemProfile {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for SubsystemProfile {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_bucket() {
        let mut p = SubsystemProfile::new();
        p.record(Subsystem::App, 100);
        p.record(Subsystem::App, 50);
        p.record(Subsystem::Scan, 7);
        assert_eq!(p.nanos(Subsystem::App), 150);
        assert_eq!(p.calls(Subsystem::App), 2);
        assert_eq!(p.nanos(Subsystem::Scan), 7);
        assert_eq!(p.nanos(Subsystem::Scheduler), 0);
        assert_eq!(p.total_nanos(), 150);
        assert!(!p.is_empty());
    }

    #[test]
    fn time_runs_closure_and_records() {
        let mut p = SubsystemProfile::new();
        let v = p.time(Subsystem::QueryMatch, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.calls(Subsystem::QueryMatch), 1);
    }

    #[test]
    fn merge_sums_buckets() {
        let mut a = SubsystemProfile::new();
        let mut b = SubsystemProfile::new();
        a.record(Subsystem::TcpPump, 10);
        b.record(Subsystem::TcpPump, 5);
        b.record(Subsystem::Scheduler, 1);
        a.merge(&b);
        assert_eq!(a.nanos(Subsystem::TcpPump), 15);
        assert_eq!(a.calls(Subsystem::TcpPump), 2);
        assert_eq!(a.nanos(Subsystem::Scheduler), 1);
    }

    #[test]
    fn profiles_compare_equal_regardless_of_content() {
        let mut a = SubsystemProfile::new();
        a.record(Subsystem::App, 999);
        assert_eq!(a, SubsystemProfile::new());
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = Subsystem::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "scheduler",
                "app",
                "tcp_pump",
                "scan",
                "scan_merge",
                "query_match",
                "shard_exchange"
            ]
        );
    }
}
