//! Small-footprint map containers for per-node protocol state.
//!
//! At paper scale (a few hundred nodes) each servent carrying half a dozen
//! `HashMap`s is invisible. At 10^5–10^6 nodes the fixed overhead of those
//! maps — SipHash state, load-factor slack, 48-byte struct headers —
//! dominates the bytes-per-node budget. Two replacements cover every
//! per-node table in the protocol crates:
//!
//! * [`VecMap`] — a sorted `Vec<(K, V)>` with binary-search lookup, for
//!   keyspaces bounded by a node's degree (connection tables, in-flight
//!   downloads: typically ≤ 32 entries, never more than a few hundred).
//!   An empty map is one `Vec` (24 bytes, no allocation); a populated map
//!   stores exactly its entries plus growth slack, with no hash state and
//!   no per-slot control bytes.
//! * [`FifoMap`] / [`FifoSet`] — an open-addressed, power-of-two table
//!   keyed through the [`KeyHash`] trait, paired with a FIFO eviction
//!   queue, for the bounded route/duplicate tables (seen-GUIDs, query
//!   routes, push routes). Replaces the `HashMap` + `VecDeque` pairs with
//!   one allocation-free-when-empty structure and a multiply-shift hash
//!   instead of SipHash.
//!
//! Both preserve the *exact* observable semantics of the `HashMap`-based
//! code they replace (the proptest suites below drive them against the
//! std-collections reference): full-key equality on every probe, value
//! overwrite without FIFO reordering, eviction strictly in insert order.
//! Iteration order of [`VecMap`] is sorted by key — already deterministic,
//! unlike `HashMap`, so the fan-out sites that used to collect-and-sort
//! can keep their sort as a no-op safety net.

use std::collections::VecDeque;

/// A 64-bit hash for open-addressed table keys. Implementors must provide
/// a well-mixed value (the table uses the high bits via multiply-shift);
/// equality of hashes is *never* trusted — every probe compares full keys.
pub trait KeyHash {
    fn key_hash(&self) -> u64;
}

#[inline]
fn mix(h: u64) -> u64 {
    // splitmix64 finalizer: cheap, and forgiving of weak inputs like
    // sequential connection ids.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyHash for u64 {
    #[inline]
    fn key_hash(&self) -> u64 {
        mix(*self)
    }
}

impl KeyHash for crate::ConnId {
    #[inline]
    fn key_hash(&self) -> u64 {
        mix(self.0)
    }
}

// ---------------------------------------------------------------------------
// VecMap
// ---------------------------------------------------------------------------

/// A map stored as a `Vec<(K, V)>` sorted by key: binary-search reads,
/// shift-insert writes. Intended for degree-bounded tables where n stays
/// small; every operation is O(log n) to find plus O(n) to shift, which
/// beats hashing for n up to a few hundred and costs a fraction of the
/// memory.
#[derive(Debug, Clone)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> VecMap<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn idx(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.idx(key).is_ok()
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        self.idx(key).ok().map(|i| &self.entries[i].1)
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.idx(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Inserts, returning the previous value if the key was present
    /// (`HashMap::insert` semantics).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.idx(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes, returning the value if the key was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.idx(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// `entry(key).or_insert_with(default)` without the entry-API plumbing:
    /// returns the existing value or inserts the default first.
    pub fn entry_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.idx(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Key-sorted iteration (deterministic, unlike `HashMap`).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Keeps only entries for which `f` returns true (sorted order).
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Heap bytes held by the backing storage.
    pub fn heap_bytes(&self) -> u64 {
        (self.entries.capacity() * std::mem::size_of::<(K, V)>()) as u64
    }
}

// ---------------------------------------------------------------------------
// FifoMap / FifoSet
// ---------------------------------------------------------------------------

/// One open-addressing slot. `Tombstone` keeps probe chains intact after
/// removals; tombstones are reclaimed wholesale on rehash.
#[derive(Debug, Clone)]
enum Slot<K, V> {
    Empty,
    Tombstone,
    Full(K, V),
}

/// An open-addressed hash map with FIFO capacity eviction: the
/// `HashMap + VecDeque` route-table idiom as one structure. `insert` on a
/// *fresh* key records it in the eviction queue and, past `bound` live
/// keys, removes the oldest; `insert` on an *existing* key overwrites the
/// value without touching the queue — exactly the semantics of the code
/// it replaces (`remember_seen` / `route_query_back`).
///
/// Unbounded use is supported with `bound = usize::MAX`. An empty map
/// holds no heap allocation.
#[derive(Debug, Clone)]
pub struct FifoMap<K, V> {
    slots: Vec<Slot<K, V>>,
    order: VecDeque<K>,
    bound: usize,
    len: usize,
    /// Full (non-tombstone) plus tombstone slots — the rehash trigger.
    used: usize,
}

impl<K: KeyHash + Eq + Copy, V> FifoMap<K, V> {
    pub fn bounded(bound: usize) -> Self {
        FifoMap {
            slots: Vec::new(),
            order: VecDeque::new(),
            bound,
            len: 0,
            used: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Finds `key`'s slot (Ok) or the first insertable slot on its probe
    /// chain (Err). Caller guarantees the table is allocated and not full.
    fn probe(&self, key: &K) -> Result<usize, usize> {
        let mask = self.mask();
        let mut i = (key.key_hash() >> 32) as usize & mask;
        let mut insert_at = None;
        loop {
            match &self.slots[i] {
                Slot::Empty => return Err(insert_at.unwrap_or(i)),
                Slot::Tombstone => {
                    if insert_at.is_none() {
                        insert_at = Some(i);
                    }
                }
                Slot::Full(k, _) => {
                    if k == key {
                        return Ok(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || Slot::Empty);
        self.used = self.len;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let i = match self.probe(&k) {
                    Ok(i) | Err(i) => i,
                };
                self.slots[i] = Slot::Full(k, v);
            }
        }
    }

    /// Grows/rehashes so at least one more entry fits below 7/8 load.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() || (self.used + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
    }

    pub fn contains_key(&self, key: &K) -> bool {
        !self.slots.is_empty() && self.probe(key).is_ok()
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Ok(i) => match &self.slots[i] {
                Slot::Full(_, v) => Some(v),
                _ => unreachable!(),
            },
            Err(_) => None,
        }
    }

    /// Removes `key` without touching the eviction queue (the stale queue
    /// entry is skipped at eviction time — same net behavior as the
    /// original idiom, which never removed mid-queue either).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Ok(i) => {
                let slot = std::mem::replace(&mut self.slots[i], Slot::Tombstone);
                self.len -= 1;
                match slot {
                    Slot::Full(_, v) => Some(v),
                    _ => unreachable!(),
                }
            }
            Err(_) => None,
        }
    }

    fn raw_insert(&mut self, key: K, value: V) -> Option<V> {
        self.reserve_one();
        match self.probe(&key) {
            Ok(i) => match &mut self.slots[i] {
                Slot::Full(_, v) => Some(std::mem::replace(v, value)),
                _ => unreachable!(),
            },
            Err(i) => {
                if matches!(self.slots[i], Slot::Empty) {
                    self.used += 1;
                }
                self.slots[i] = Slot::Full(key, value);
                self.len += 1;
                None
            }
        }
    }

    /// Inserts with FIFO bounding. A fresh key joins the eviction queue
    /// (evicting the oldest live key once over `bound`); overwriting an
    /// existing key's value leaves the queue untouched.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let prev = self.raw_insert(key, value);
        if prev.is_none() {
            self.order.push_back(key);
            if self.order.len() > self.bound {
                if let Some(old) = self.order.pop_front() {
                    self.remove(&old);
                }
            }
        }
        prev
    }

    /// Heap bytes held by the table and eviction queue.
    pub fn heap_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Slot<K, V>>()
            + self.order.capacity() * std::mem::size_of::<K>()) as u64
    }
}

/// [`FifoMap`] with unit values: the bounded duplicate-suppression set.
#[derive(Debug, Clone)]
pub struct FifoSet<K> {
    map: FifoMap<K, ()>,
}

impl<K: KeyHash + Eq + Copy> FifoSet<K> {
    pub fn bounded(bound: usize) -> Self {
        FifoSet {
            map: FifoMap::bounded(bound),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts; returns true when the key was fresh (`HashSet::insert`
    /// semantics), evicting FIFO past the bound.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    pub fn heap_bytes(&self) -> u64 {
        self.map.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn vecmap_basics() {
        let mut m: VecMap<u64, &str> = VecMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(3, "b"), None);
        assert_eq!(m.insert(5, "c"), Some("a"));
        assert_eq!(m.get(&5), Some(&"c"));
        assert_eq!(m.len(), 2);
        let keys: Vec<u64> = m.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![3, 5], "iteration is key-sorted");
        assert_eq!(m.remove(&3), Some("b"));
        assert_eq!(m.remove(&3), None);
        *m.entry_or_insert_with(9, || "z") = "y";
        assert_eq!(m.get(&9), Some(&"y"));
        m.retain(|&k, _| k != 9);
        assert!(!m.contains_key(&9));
    }

    #[test]
    fn fifomap_evicts_in_insert_order() {
        let mut m: FifoMap<u64, u32> = FifoMap::bounded(3);
        for k in 0..3u64 {
            assert_eq!(m.insert(k, k as u32), None);
        }
        // Overwrite must not refresh position 0 in the queue.
        assert_eq!(m.insert(0, 99), Some(0));
        assert_eq!(m.len(), 3);
        m.insert(3, 3); // evicts key 0 despite the recent overwrite
        assert!(!m.contains_key(&0));
        assert!(m.contains_key(&1));
        m.insert(4, 4); // evicts key 1
        assert!(!m.contains_key(&1));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn fifoset_matches_manual_idiom() {
        // Reference: the exact remember_seen idiom from the servent.
        let bound = 4;
        let mut set = HashSet::new();
        let mut order = std::collections::VecDeque::new();
        let mut fifo: FifoSet<u64> = FifoSet::bounded(bound);
        for k in [1u64, 2, 3, 1, 4, 5, 6, 2, 2, 7, 1] {
            let fresh_ref = set.insert(k);
            if fresh_ref {
                order.push_back(k);
                if order.len() > bound {
                    let old = order.pop_front().unwrap();
                    set.remove(&old);
                }
            }
            assert_eq!(fifo.insert(k), fresh_ref, "key {k}");
        }
        for k in 0..10u64 {
            assert_eq!(fifo.contains(&k), set.contains(&k), "key {k}");
        }
    }

    #[test]
    fn empty_maps_hold_no_heap() {
        let m: FifoMap<u64, u64> = FifoMap::bounded(16);
        assert_eq!(m.heap_bytes(), 0);
        let v: VecMap<u64, u64> = VecMap::new();
        assert_eq!(v.heap_bytes(), 0);
    }

    proptest::proptest! {
        /// VecMap vs HashMap under a random op stream.
        #[test]
        fn vecmap_equivalence(ops in proptest::collection::vec(
            (0u8..4, 0u64..32, 0u32..1000), 0..200)) {
            let mut vm: VecMap<u64, u32> = VecMap::new();
            let mut hm: HashMap<u64, u32> = HashMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => proptest::prop_assert_eq!(vm.insert(k, v), hm.insert(k, v)),
                    1 => proptest::prop_assert_eq!(vm.remove(&k), hm.remove(&k)),
                    2 => proptest::prop_assert_eq!(vm.get(&k), hm.get(&k)),
                    _ => proptest::prop_assert_eq!(vm.contains_key(&k), hm.contains_key(&k)),
                }
                proptest::prop_assert_eq!(vm.len(), hm.len());
            }
            let mut reference: Vec<(u64, u32)> = hm.into_iter().collect();
            reference.sort_unstable();
            let got: Vec<(u64, u32)> = vm.iter().map(|(&k, &v)| (k, v)).collect();
            proptest::prop_assert_eq!(got, reference, "sorted iteration matches");
        }

        /// FifoMap vs the HashMap+VecDeque idiom it replaces, including
        /// interleaved removes (which leave stale queue entries in both).
        #[test]
        fn fifomap_equivalence(
            bound in 1usize..8,
            ops in proptest::collection::vec((0u8..3, 0u64..16, 0u32..100), 0..200),
        ) {
            let mut fm: FifoMap<u64, u32> = FifoMap::bounded(bound);
            let mut hm: HashMap<u64, u32> = HashMap::new();
            let mut order: std::collections::VecDeque<u64> = Default::default();
            for (op, k, v) in ops {
                match op {
                    0 => {
                        let prev = hm.insert(k, v);
                        if prev.is_none() {
                            order.push_back(k);
                            if order.len() > bound {
                                let old = order.pop_front().unwrap();
                                hm.remove(&old);
                            }
                        }
                        proptest::prop_assert_eq!(fm.insert(k, v), prev);
                    }
                    1 => proptest::prop_assert_eq!(fm.remove(&k), hm.remove(&k)),
                    _ => proptest::prop_assert_eq!(fm.get(&k), hm.get(&k)),
                }
                proptest::prop_assert_eq!(fm.len(), hm.len());
            }
            for k in 0..16u64 {
                proptest::prop_assert_eq!(fm.get(&k), hm.get(&k), "final key {}", k);
            }
        }

        /// FifoSet vs HashSet+VecDeque (the remember_seen idiom).
        #[test]
        fn fifoset_equivalence(
            bound in 1usize..8,
            keys in proptest::collection::vec(0u64..16, 0..200),
        ) {
            let mut fs: FifoSet<u64> = FifoSet::bounded(bound);
            let mut hs: HashSet<u64> = HashSet::new();
            let mut order: std::collections::VecDeque<u64> = Default::default();
            for k in keys {
                let fresh = hs.insert(k);
                if fresh {
                    order.push_back(k);
                    if order.len() > bound {
                        let old = order.pop_front().unwrap();
                        hs.remove(&old);
                    }
                }
                proptest::prop_assert_eq!(fs.insert(k), fresh);
                proptest::prop_assert_eq!(fs.len(), hs.len());
            }
            for k in 0..16u64 {
                proptest::prop_assert_eq!(fs.contains(&k), hs.contains(&k));
            }
        }
    }
}
