//! Structured sim-time telemetry: event journal, metrics registry, sinks.
//!
//! Three pieces, designed so that *disabled telemetry is unobservable*:
//!
//! * [`event`] — sim-time-stamped [`TelemetryEvent`] records (query
//!   issued/matched, download start/retry/complete, scan verdict, fault
//!   injected, churn up/down) with a stable flat-JSON journal schema.
//! * [`sink`] — the [`TelemetrySink`] trait ([`NullSink`], bounded
//!   [`RingSink`], JSONL [`JsonlSink`], stderr [`TraceSink`]) and the
//!   per-simulator [`Telemetry`] hub with per-category 1-in-N sampling,
//!   configured from `P2PMAL_JOURNAL` / `P2PMAL_TRACE` /
//!   `P2PMAL_JOURNAL_SAMPLE` via [`TelemetryConfig`].
//! * [`registry`] + [`hist`] — named counters, gauges and log2-bucket
//!   histograms rolling up into `SimMetrics` without breaking its
//!   `Eq`-based determinism assertions (wall-clock histograms hide behind
//!   the always-equal [`WallHists`] shield).
//!
//! Determinism contract: with no sinks attached (the default), no event is
//! ever constructed, no RNG is drawn, and trajectories stay byte-identical
//! to a build without this module. With sinks attached, identical seeds
//! produce byte-identical journals because every record is keyed on
//! sim-time and emitted in simulation order.

pub mod event;
pub mod hist;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::{EventBody, EventCategory, FaultKind, TelemetryEvent, CATEGORY_COUNT};
pub use hist::{HistSummary, Log2Histogram, LOG2_BUCKETS};
pub use registry::{Counter, Gauge, MetricsRegistry, SimHist, WallHist, WallHists};
pub use sink::{
    journal_path_for, parse_trace_level, trace_level, JsonlSink, NullSink, RingSink, Telemetry,
    TelemetryConfig, TelemetrySink, TraceSink,
};
pub use span::SpanCtx;
