//! The metrics registry: named counters, gauges and log2 histograms that
//! roll up into [`crate::SimMetrics`].
//!
//! Two determinism classes live here, mirroring the split between
//! [`crate::SimMetrics`] counters and [`crate::SubsystemProfile`] timings:
//!
//! * **Sim-keyed** counters/gauges/histograms record quantities derived
//!   purely from the simulation trajectory (sim-time latencies, fan-out,
//!   attempt counts, queue depth). They derive `Eq` and participate in
//!   identical-seed equality assertions.
//! * **Wall-keyed** histograms record wall-clock quantities (scan wall
//!   time). [`WallHists`] compares equal to everything, so metric
//!   snapshots stay usable in determinism checks.

use super::hist::{HistSummary, Log2Histogram};

/// Number of deterministic counters.
pub const COUNTER_COUNT: usize = 4;

/// Deterministic monotonic counters, harness-incremented through
/// [`crate::Ctx::registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Workload queries the crawler issued.
    QueriesIssued = 0,
    /// Distinct download objects whose first attempt started.
    DownloadsStarted = 1,
    /// Retry attempts scheduled by the crawler.
    DownloadRetries = 2,
    /// Scan verdicts produced (bodies that completed the pipeline).
    ScanVerdicts = 3,
}

impl Counter {
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::QueriesIssued,
        Counter::DownloadsStarted,
        Counter::DownloadRetries,
        Counter::ScanVerdicts,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Counter::QueriesIssued => "queries_issued",
            Counter::DownloadsStarted => "downloads_started",
            Counter::DownloadRetries => "download_retries",
            Counter::ScanVerdicts => "scan_verdicts",
        }
    }
}

/// Number of deterministic gauges.
pub const GAUGE_COUNT: usize = 2;

/// Deterministic last-write-wins gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Scheduled-event queue depth at the last per-day sample.
    QueueDepth = 0,
    /// Crawler downloads in flight after the last slot refill.
    InFlightDownloads = 1,
}

impl Gauge {
    pub const ALL: [Gauge; GAUGE_COUNT] = [Gauge::QueueDepth, Gauge::InFlightDownloads];

    pub fn label(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue_depth",
            Gauge::InFlightDownloads => "inflight_downloads",
        }
    }
}

/// Number of deterministic (sim-keyed) histograms.
pub const SIM_HIST_COUNT: usize = 4;

/// Histograms over sim-derived quantities (deterministic per seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimHist {
    /// Sim-time from a downloadable response entering the fetch queue to
    /// its terminal outcome, in microseconds.
    DownloadLatencyUs = 0,
    /// Responses attributed to one workload query (fan-out), recorded when
    /// the next query closes it out.
    ResponsesPerQuery = 1,
    /// Attempts one download object took to reach a terminal outcome.
    DownloadAttempts = 2,
    /// Scheduled-event queue depth at the per-day samples.
    QueueDepth = 3,
}

impl SimHist {
    pub const ALL: [SimHist; SIM_HIST_COUNT] = [
        SimHist::DownloadLatencyUs,
        SimHist::ResponsesPerQuery,
        SimHist::DownloadAttempts,
        SimHist::QueueDepth,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SimHist::DownloadLatencyUs => "download_latency_us",
            SimHist::ResponsesPerQuery => "responses_per_query",
            SimHist::DownloadAttempts => "download_attempts",
            SimHist::QueueDepth => "queue_depth",
        }
    }
}

/// Number of wall-clock histograms.
pub const WALL_HIST_COUNT: usize = 1;

/// Histograms over wall-clock quantities (diagnostics only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallHist {
    /// Wall-clock microseconds one scan-pipeline invocation took.
    ScanWallUs = 0,
}

impl WallHist {
    pub const ALL: [WallHist; WALL_HIST_COUNT] = [WallHist::ScanWallUs];

    pub fn label(self) -> &'static str {
        match self {
            WallHist::ScanWallUs => "scan_wall_us",
        }
    }
}

/// Wall-clock histograms behind the always-equal shield: identical-seed
/// metric snapshots compare equal even though wall timings differ
/// (the [`crate::SubsystemProfile`] pattern).
#[derive(Debug, Default, Clone)]
pub struct WallHists {
    hists: [Log2Histogram; WALL_HIST_COUNT],
}

impl WallHists {
    #[inline]
    pub fn record(&mut self, h: WallHist, v: u64) {
        self.hists[h as usize].record(v);
    }

    pub fn hist(&self, h: WallHist) -> &Log2Histogram {
        &self.hists[h as usize]
    }

    pub fn merge(&mut self, other: &WallHists) {
        for i in 0..WALL_HIST_COUNT {
            self.hists[i].merge(&other.hists[i]);
        }
    }
}

/// Wall-clock never participates in determinism checks.
impl PartialEq for WallHists {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for WallHists {}

/// The registry carried by [`crate::SimMetrics::telemetry`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: [u64; COUNTER_COUNT],
    gauges: [u64; GAUGE_COUNT],
    hists: [Log2Histogram; SIM_HIST_COUNT],
    /// Wall-clock histograms (always-equal; see [`WallHists`]).
    pub wall: WallHists,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    #[inline]
    pub fn set_gauge(&mut self, g: Gauge, v: u64) {
        self.gauges[g as usize] = v;
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Records a sim-derived sample.
    #[inline]
    pub fn record(&mut self, h: SimHist, v: u64) {
        self.hists[h as usize].record(v);
    }

    /// Records a wall-clock sample (diagnostics only).
    #[inline]
    pub fn record_wall(&mut self, h: WallHist, v: u64) {
        self.wall.record(h, v);
    }

    pub fn hist(&self, h: SimHist) -> &Log2Histogram {
        &self.hists[h as usize]
    }

    /// Every deterministic histogram's labeled summary, in declaration
    /// order (the rendering order of trace lines and `BENCH_study.json`).
    pub fn sim_summaries(&self) -> Vec<(&'static str, HistSummary)> {
        SimHist::ALL
            .iter()
            .map(|&h| (h.label(), self.hist(h).summary()))
            .collect()
    }

    /// Every wall-clock histogram's labeled summary.
    pub fn wall_summaries(&self) -> Vec<(&'static str, HistSummary)> {
        WallHist::ALL
            .iter()
            .map(|&h| (h.label(), self.wall.hist(h).summary()))
            .collect()
    }

    /// Folds another registry into this one. Counters and histograms sum
    /// exactly; gauges keep the other side's last write when it has one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for i in 0..COUNTER_COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..GAUGE_COUNT {
            if other.gauges[i] != 0 {
                self.gauges[i] = other.gauges[i];
            }
        }
        for i in 0..SIM_HIST_COUNT {
            self.hists[i].merge(&other.hists[i]);
        }
        self.wall.merge(&other.wall);
    }

    /// True when nothing deterministic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().all(|h| h.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_hists_accumulate() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc(Counter::QueriesIssued);
        r.add(Counter::QueriesIssued, 2);
        r.set_gauge(Gauge::QueueDepth, 17);
        r.record(SimHist::DownloadLatencyUs, 1_000);
        r.record(SimHist::DownloadLatencyUs, 2_000);
        assert_eq!(r.counter(Counter::QueriesIssued), 3);
        assert_eq!(r.gauge(Gauge::QueueDepth), 17);
        assert_eq!(r.hist(SimHist::DownloadLatencyUs).count(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn wall_hists_never_break_equality() {
        let mut a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.record_wall(WallHist::ScanWallUs, 999_999);
        assert_eq!(a, b, "wall-clock data must not affect Eq");
        // But a sim-keyed sample does.
        a.record(SimHist::QueueDepth, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_sums_counters_and_hists() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc(Counter::DownloadsStarted);
        b.add(Counter::DownloadsStarted, 4);
        b.set_gauge(Gauge::InFlightDownloads, 3);
        a.record(SimHist::ResponsesPerQuery, 10);
        b.record(SimHist::ResponsesPerQuery, 20);
        a.merge(&b);
        assert_eq!(a.counter(Counter::DownloadsStarted), 5);
        assert_eq!(a.gauge(Gauge::InFlightDownloads), 3);
        assert_eq!(a.hist(SimHist::ResponsesPerQuery).count(), 2);
    }

    #[test]
    fn labels_are_stable() {
        let c: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            c,
            vec![
                "queries_issued",
                "downloads_started",
                "download_retries",
                "scan_verdicts"
            ]
        );
        let h: Vec<&str> = SimHist::ALL.iter().map(|h| h.label()).collect();
        assert_eq!(
            h,
            vec![
                "download_latency_us",
                "responses_per_query",
                "download_attempts",
                "queue_depth"
            ]
        );
        assert_eq!(WallHist::ScanWallUs.label(), "scan_wall_us");
        assert_eq!(Gauge::QueueDepth.label(), "queue_depth");
    }
}
