//! Structured, sim-time-stamped telemetry records.
//!
//! One [`TelemetryEvent`] is produced per observable measurement step —
//! query issued/matched, download start/retry/complete, scan verdict, fault
//! injected, churn transition — and fanned out to every configured sink.
//! The JSONL rendering below *is* the journal schema; the leveled trace
//! output renders the same records, so the two views can never drift.
//!
//! Events timestamped with sim-time only are deterministic: identical seeds
//! emit byte-identical journals.

use crate::telemetry::span::{span_hex, SpanCtx};
use crate::time::SimTime;
use p2pmal_json::Value;

/// Number of event categories (sampling knobs are per-category).
pub const CATEGORY_COUNT: usize = 5;

/// Coarse event grouping used for sampling and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventCategory {
    Query = 0,
    Download = 1,
    Scan = 2,
    Fault = 3,
    Churn = 4,
}

impl EventCategory {
    pub const ALL: [EventCategory; CATEGORY_COUNT] = [
        EventCategory::Query,
        EventCategory::Download,
        EventCategory::Scan,
        EventCategory::Fault,
        EventCategory::Churn,
    ];

    /// Stable snake_case label (journal `cat` field, sampling knob keys).
    pub fn label(self) -> &'static str {
        match self {
            EventCategory::Query => "query",
            EventCategory::Download => "download",
            EventCategory::Scan => "scan",
            EventCategory::Fault => "fault",
            EventCategory::Churn => "churn",
        }
    }

    /// Inverse of [`EventCategory::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        EventCategory::ALL.iter().copied().find(|c| c.label() == s)
    }
}

/// Which fault the plan injected (see `FaultPlan`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    ChunkDrop,
    ChunkTruncate,
    ChunkBitFlip,
    Reset,
    LatencySpike,
}

impl FaultKind {
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ChunkDrop => "chunk_drop",
            FaultKind::ChunkTruncate => "chunk_truncate",
            FaultKind::ChunkBitFlip => "chunk_bit_flip",
            FaultKind::Reset => "reset",
            FaultKind::LatencySpike => "latency_spike",
        }
    }
}

/// The event payload. Fields are plain owned data so records outlive the
/// callback that produced them (ring sinks hold them arbitrarily long).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventBody {
    /// The instrumented crawler issued a workload query.
    QueryIssued { text: String, seq: u64 },
    /// A servent/node's library matched a query it was asked to answer.
    /// `hops` is the overlay distance from the query's origin to the
    /// answering node (1 = direct neighbor; OpenFT searches are always 1).
    QueryMatched {
        text: String,
        results: u64,
        hops: u64,
    },
    /// A download attempt left the crawler's pending queue.
    DownloadStart {
        name: String,
        size: u64,
        host: String,
        attempt: u8,
    },
    /// An attempt failed and a retry was scheduled.
    DownloadRetry {
        name: String,
        attempt: u8,
        cause: String,
    },
    /// A download reached a terminal outcome (body scanned or given up).
    DownloadComplete {
        name: String,
        ok: bool,
        latency_us: u64,
        attempts: u8,
    },
    /// The scan pipeline produced a verdict for a downloaded body.
    ScanVerdict {
        name: String,
        sha1: String,
        len: u64,
        detections: u64,
    },
    /// One detection from a malicious verdict: the crawler observed file
    /// `name` carrying malware `family`. Emitted once per detection so
    /// per-family propagation trees fall out of the journal directly.
    Infection {
        name: String,
        family: String,
        sha1: String,
    },
    /// The fault plan injected one fault.
    FaultInjected { kind: FaultKind },
    /// A churn session took a node offline.
    ChurnDown { node: u64 },
    /// A churn session brought a node back online.
    ChurnUp { node: u64 },
}

impl EventBody {
    pub fn category(&self) -> EventCategory {
        match self {
            EventBody::QueryIssued { .. } | EventBody::QueryMatched { .. } => EventCategory::Query,
            EventBody::DownloadStart { .. }
            | EventBody::DownloadRetry { .. }
            | EventBody::DownloadComplete { .. } => EventCategory::Download,
            EventBody::ScanVerdict { .. } | EventBody::Infection { .. } => EventCategory::Scan,
            EventBody::FaultInjected { .. } => EventCategory::Fault,
            EventBody::ChurnDown { .. } | EventBody::ChurnUp { .. } => EventCategory::Churn,
        }
    }

    /// Stable snake_case event name (journal `ev` field).
    pub fn kind_label(&self) -> &'static str {
        match self {
            EventBody::QueryIssued { .. } => "query_issued",
            EventBody::QueryMatched { .. } => "query_matched",
            EventBody::DownloadStart { .. } => "download_start",
            EventBody::DownloadRetry { .. } => "download_retry",
            EventBody::DownloadComplete { .. } => "download_complete",
            EventBody::ScanVerdict { .. } => "scan_verdict",
            EventBody::Infection { .. } => "infection",
            EventBody::FaultInjected { .. } => "fault_injected",
            EventBody::ChurnDown { .. } => "churn_down",
            EventBody::ChurnUp { .. } => "churn_up",
        }
    }
}

/// One sim-time-stamped record, optionally carrying causal identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    pub at: SimTime,
    pub body: EventBody,
    /// Provenance span, when the emitter participates in a causal chain.
    /// Fault and churn events are environmental and stay spanless.
    pub span: Option<SpanCtx>,
}

impl TelemetryEvent {
    /// A spanless record (fault/churn, or tracing not wired at the site).
    pub fn new(at: SimTime, body: EventBody) -> Self {
        TelemetryEvent {
            at,
            body,
            span: None,
        }
    }

    /// A record carrying causal identity.
    pub fn with_span(at: SimTime, body: EventBody, span: SpanCtx) -> Self {
        TelemetryEvent {
            at,
            body,
            span: Some(span),
        }
    }

    pub fn category(&self) -> EventCategory {
        self.body.category()
    }

    /// The journal schema — the **single canonical field order**, shared by
    /// the JSONL journal and the `P2PMAL_TRACE=2` per-event rendering
    /// (`TraceSink` prints exactly this object):
    ///
    /// 1. envelope: `t` (sim-micros), `day`, `cat`, `ev`;
    /// 2. provenance (only when the event carries a span): `trace`, `span`,
    ///    and — unless the span is a trace root — `parent`, each a 16-char
    ///    lowercase hex string (ids are 64-bit; the JSON layer stores
    ///    numbers as `f64`, exact only below 2^53, so ids go as strings);
    /// 3. body fields, in the per-variant order below.
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("t".into(), self.at.as_micros().into()),
            ("day".into(), self.at.day().into()),
            ("cat".into(), self.category().label().into()),
            ("ev".into(), self.body.kind_label().into()),
        ];
        if let Some(s) = &self.span {
            fields.push(("trace".into(), span_hex(s.trace).into()));
            fields.push(("span".into(), span_hex(s.span).into()));
            if let Some(parent) = s.parent {
                fields.push(("parent".into(), span_hex(parent).into()));
            }
        }
        match &self.body {
            EventBody::QueryIssued { text, seq } => {
                fields.push(("text".into(), text.as_str().into()));
                fields.push(("seq".into(), (*seq).into()));
            }
            EventBody::QueryMatched {
                text,
                results,
                hops,
            } => {
                fields.push(("text".into(), text.as_str().into()));
                fields.push(("results".into(), (*results).into()));
                fields.push(("hops".into(), (*hops).into()));
            }
            EventBody::DownloadStart {
                name,
                size,
                host,
                attempt,
            } => {
                fields.push(("name".into(), name.as_str().into()));
                fields.push(("size".into(), (*size).into()));
                fields.push(("host".into(), host.as_str().into()));
                fields.push(("attempt".into(), (*attempt as u64).into()));
            }
            EventBody::DownloadRetry {
                name,
                attempt,
                cause,
            } => {
                fields.push(("name".into(), name.as_str().into()));
                fields.push(("attempt".into(), (*attempt as u64).into()));
                fields.push(("cause".into(), cause.as_str().into()));
            }
            EventBody::DownloadComplete {
                name,
                ok,
                latency_us,
                attempts,
            } => {
                fields.push(("name".into(), name.as_str().into()));
                fields.push(("ok".into(), (*ok).into()));
                fields.push(("latency_us".into(), (*latency_us).into()));
                fields.push(("attempts".into(), (*attempts as u64).into()));
            }
            EventBody::ScanVerdict {
                name,
                sha1,
                len,
                detections,
            } => {
                fields.push(("name".into(), name.as_str().into()));
                fields.push(("sha1".into(), sha1.as_str().into()));
                fields.push(("len".into(), (*len).into()));
                fields.push(("detections".into(), (*detections).into()));
            }
            EventBody::Infection { name, family, sha1 } => {
                fields.push(("name".into(), name.as_str().into()));
                fields.push(("family".into(), family.as_str().into()));
                fields.push(("sha1".into(), sha1.as_str().into()));
            }
            EventBody::FaultInjected { kind } => {
                fields.push(("kind".into(), kind.label().into()));
            }
            EventBody::ChurnDown { node } | EventBody::ChurnUp { node } => {
                fields.push(("node".into(), (*node).into()));
            }
        }
        Value::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for cat in EventCategory::ALL {
            assert_eq!(EventCategory::from_label(cat.label()), Some(cat));
        }
        assert_eq!(EventCategory::from_label("nope"), None);
    }

    #[test]
    fn json_envelope_is_stable() {
        let ev = TelemetryEvent::new(
            SimTime::from_micros(86_400_000_000 + 5),
            EventBody::DownloadComplete {
                name: "setup.exe".into(),
                ok: true,
                latency_us: 1234,
                attempts: 2,
            },
        );
        let v = ev.to_json();
        assert_eq!(v.get("t").and_then(Value::as_u64), Some(86_400_000_005));
        assert_eq!(v.get("day").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("cat").and_then(Value::as_str), Some("download"));
        assert_eq!(
            v.get("ev").and_then(Value::as_str),
            Some("download_complete")
        );
        assert_eq!(v.get("latency_us").and_then(Value::as_u64), Some(1234));
        // Every event parses back through the in-repo parser.
        let line = v.to_string_compact();
        let back = p2pmal_json::parse(&line).expect("journal line parses");
        assert_eq!(back, v);
    }

    #[test]
    fn every_body_categorizes() {
        let bodies = [
            EventBody::QueryIssued {
                text: "q".into(),
                seq: 1,
            },
            EventBody::QueryMatched {
                text: "q".into(),
                results: 3,
                hops: 2,
            },
            EventBody::DownloadStart {
                name: "a".into(),
                size: 1,
                host: "1.2.3.4:80".into(),
                attempt: 0,
            },
            EventBody::DownloadRetry {
                name: "a".into(),
                attempt: 1,
                cause: "timeout".into(),
            },
            EventBody::DownloadComplete {
                name: "a".into(),
                ok: false,
                latency_us: 9,
                attempts: 3,
            },
            EventBody::ScanVerdict {
                name: "a".into(),
                sha1: "00".into(),
                len: 2,
                detections: 0,
            },
            EventBody::Infection {
                name: "a".into(),
                family: "W32.Gnuman".into(),
                sha1: "00".into(),
            },
            EventBody::FaultInjected {
                kind: FaultKind::Reset,
            },
            EventBody::ChurnDown { node: 7 },
            EventBody::ChurnUp { node: 7 },
        ];
        for b in bodies {
            let ev = TelemetryEvent::new(SimTime::ZERO, b);
            let v = ev.to_json();
            assert_eq!(
                v.get("cat").and_then(Value::as_str),
                Some(ev.category().label())
            );
            assert_eq!(
                v.get("ev").and_then(Value::as_str),
                Some(ev.body.kind_label())
            );
        }
    }

    #[test]
    fn span_fields_follow_the_envelope() {
        let trace = 0x1122_3344_5566_7788u64;
        let ev = TelemetryEvent::with_span(
            SimTime::from_micros(42),
            EventBody::QueryIssued {
                text: "mp3".into(),
                seq: 0,
            },
            SpanCtx::root(trace, crate::telemetry::span::span_root(trace)),
        );
        let v = ev.to_json();
        // Canonical order: envelope, then trace/span (no parent on roots).
        let keys: Vec<&str> = match &v {
            Value::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => panic!("flat object"),
        };
        assert_eq!(
            keys,
            ["t", "day", "cat", "ev", "trace", "span", "text", "seq"]
        );
        assert_eq!(
            v.get("trace").and_then(Value::as_str),
            Some("1122334455667788")
        );
        let child = TelemetryEvent::with_span(
            SimTime::from_micros(43),
            EventBody::QueryMatched {
                text: "mp3".into(),
                results: 1,
                hops: 1,
            },
            SpanCtx::child(trace, 7, 9),
        );
        let cv = child.to_json();
        assert_eq!(
            cv.get("parent").and_then(Value::as_str),
            Some("0000000000000009")
        );
        // Spanless events carry no trace/span/parent keys at all.
        assert!(
            TelemetryEvent::new(SimTime::ZERO, EventBody::ChurnDown { node: 1 })
                .to_json()
                .get("trace")
                .is_none()
        );
    }
}
