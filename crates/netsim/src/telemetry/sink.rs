//! Telemetry sinks and the per-simulator hub that fans events out to them.
//!
//! The default is **no sinks at all**: emission sites check
//! [`Telemetry::enabled`] first, so a journal-off run never constructs an
//! event, draws no randomness, and stays byte-identical to a build without
//! the telemetry layer. With sinks attached, every record flows to all of
//! them — the JSONL journal and the leveled trace render the same events.

use super::event::{EventCategory, TelemetryEvent, CATEGORY_COUNT};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A consumer of telemetry records. `Send` so a sink hub can live inside a
/// shard that migrates onto a worker thread (sharded runs buffer per shard
/// and replay through the main-thread hub at window barriers).
pub trait TelemetrySink: Send {
    fn record(&mut self, event: &TelemetryEvent);
    /// Push buffered output to its destination (called at end of run; file
    /// sinks also flush on drop).
    fn flush(&mut self) {}
}

/// Discards everything. The zero-cost default: the hub never reaches a
/// sink's `record` when no sink is attached, so this type mostly serves as
/// an explicit "telemetry off" marker in tests and examples.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&mut self, _event: &TelemetryEvent) {}
}

/// Bounded in-memory ring: keeps the most recent `cap` events. Useful for
/// harness assertions and post-mortem inspection without touching disk.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TelemetryEvent>,
}

impl RingSink {
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: VecDeque::new(),
        }
    }

    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.buf.iter()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TelemetrySink for RingSink {
    fn record(&mut self, event: &TelemetryEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }
}

/// JSONL file sink: one compact JSON object per line, in emission order
/// (which is sim-time order, since events are written as the simulation
/// produces them).
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) the journal file, including parent directories.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Ok(JsonlSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, event: &TelemetryEvent) {
        let _ = writeln!(self.out, "{}", event.to_json().to_string_compact());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Per-event trace rendering (`P2PMAL_TRACE=2`): each record goes to
/// stderr as the same compact JSON the journal writes, tagged with the
/// network label.
#[derive(Debug)]
pub struct TraceSink {
    label: String,
}

impl TraceSink {
    pub fn new(label: &str) -> Self {
        TraceSink {
            label: label.to_string(),
        }
    }
}

impl TelemetrySink for TraceSink {
    fn record(&mut self, event: &TelemetryEvent) {
        eprintln!(
            "[trace] {} {}",
            self.label,
            event.to_json().to_string_compact()
        );
    }
}

/// The per-simulator hub: attached sinks plus per-category 1-in-N sampling.
///
/// `seen` counts *candidate* events per category (post-`enabled` gate), so
/// sampling keeps every Nth candidate deterministically — no RNG involved.
pub struct Telemetry {
    sinks: Vec<Box<dyn TelemetrySink>>,
    sample: [u32; CATEGORY_COUNT],
    seen: [u64; CATEGORY_COUNT],
    /// Sharded-mode buffering: set on per-shard hubs, which have no sinks
    /// of their own. `enabled` answers from the control hub's mask snapshot
    /// and `emit` appends every candidate unsampled; the shard engine
    /// drains the buffer after each dispatched event and replays the
    /// key-ordered merge through the control hub, so sampling counters
    /// advance in the same global order as a serial run.
    buffer: Option<BufferMode>,
}

struct BufferMode {
    mask: [bool; CATEGORY_COUNT],
    events: Vec<TelemetryEvent>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sinks.len())
            .field("sample", &self.sample)
            .field("seen", &self.seen)
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// No sinks: `enabled` is false for every category and `emit` is a
    /// no-op. This is the state every simulator starts in.
    pub fn disabled() -> Self {
        Telemetry {
            sinks: Vec::new(),
            sample: [1; CATEGORY_COUNT],
            seen: [0; CATEGORY_COUNT],
            buffer: None,
        }
    }

    pub fn new(sinks: Vec<Box<dyn TelemetrySink>>, sample: [u32; CATEGORY_COUNT]) -> Self {
        Telemetry {
            sinks,
            sample,
            seen: [0; CATEGORY_COUNT],
            buffer: None,
        }
    }

    /// A sinkless buffering hub for one shard of a sharded run. `mask` is
    /// the control hub's [`Telemetry::enabled_mask`]; events of enabled
    /// categories accumulate unsampled until [`Telemetry::take_buffered`].
    pub fn buffered(mask: [bool; CATEGORY_COUNT]) -> Self {
        Telemetry {
            sinks: Vec::new(),
            sample: [1; CATEGORY_COUNT],
            seen: [0; CATEGORY_COUNT],
            buffer: Some(BufferMode {
                mask,
                events: Vec::new(),
            }),
        }
    }

    /// Per-category `enabled` snapshot, for seeding shard-local buffering
    /// hubs from the control hub.
    pub fn enabled_mask(&self) -> [bool; CATEGORY_COUNT] {
        let mut mask = [false; CATEGORY_COUNT];
        for cat in EventCategory::ALL {
            mask[cat as usize] = self.enabled(cat);
        }
        mask
    }

    /// Drains buffered events (buffering hubs only; empty otherwise).
    pub fn take_buffered(&mut self) -> Vec<TelemetryEvent> {
        match &mut self.buffer {
            Some(b) if !b.events.is_empty() => std::mem::take(&mut b.events),
            _ => Vec::new(),
        }
    }

    /// Whether events of `cat` go anywhere at all. Emission sites check
    /// this *before* building an event, keeping the disabled path free of
    /// allocation and formatting.
    #[inline]
    pub fn enabled(&self, cat: EventCategory) -> bool {
        if let Some(b) = &self.buffer {
            return b.mask[cat as usize];
        }
        !self.sinks.is_empty() && self.sample[cat as usize] != 0
    }

    /// Records one event, honoring the category's 1-in-N sampling.
    /// Buffering hubs instead retain every enabled-category candidate —
    /// sampling is applied once, by the control hub the merged stream is
    /// replayed through.
    pub fn emit(&mut self, event: TelemetryEvent) {
        if let Some(b) = &mut self.buffer {
            if b.mask[event.category() as usize] {
                b.events.push(event);
            }
            return;
        }
        let cat = event.category() as usize;
        if self.sinks.is_empty() || self.sample[cat] == 0 {
            return;
        }
        let keep = self.seen[cat].is_multiple_of(self.sample[cat] as u64);
        self.seen[cat] += 1;
        if !keep {
            return;
        }
        for sink in &mut self.sinks {
            sink.record(&event);
        }
    }

    /// Flushes every sink (end of run; file sinks also flush on drop).
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parses a `P2PMAL_TRACE`-style value into a trace level. Unset, empty,
/// `0`, `off`, `false` and `no` mean **off**; `2` enables per-event trace;
/// anything else (the historical `1`, `yes`, ...) is level 1 (per-day
/// summary lines).
pub fn parse_trace_level(value: Option<&str>) -> u8 {
    match value.map(str::trim) {
        None | Some("") | Some("0") | Some("off") | Some("false") | Some("no") => 0,
        Some("2") => 2,
        Some(_) => 1,
    }
}

/// The current `P2PMAL_TRACE` level (see [`parse_trace_level`]).
pub fn trace_level() -> u8 {
    parse_trace_level(std::env::var("P2PMAL_TRACE").ok().as_deref())
}

/// Derives a per-network journal path from the user-supplied one by
/// inserting the network label before the extension:
/// `journal.jsonl` + `limewire` → `journal.limewire.jsonl`.
pub fn journal_path_for(base: &Path, label: &str) -> PathBuf {
    match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => base.with_extension(format!("{label}.{ext}")),
        None => base.with_extension(label),
    }
}

/// Cloneable sink configuration carried by scenario presets: how a run
/// turns env knobs (or programmatic settings) into a [`Telemetry`] hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Base journal path (`P2PMAL_JOURNAL`); each network writes to
    /// [`journal_path_for`]`(base, label)`. `None` disables the journal.
    pub journal: Option<PathBuf>,
    /// Trace level (`P2PMAL_TRACE`): 0 off, 1 per-day lines, 2 adds
    /// per-event records rendered from the same journal stream.
    pub trace: u8,
    /// Per-category 1-in-N sampling (`P2PMAL_JOURNAL_SAMPLE`); 1 keeps
    /// everything, 0 disables the category entirely.
    pub sample: [u32; CATEGORY_COUNT],
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TelemetryConfig {
    /// Telemetry fully off (the deterministic-goldens configuration).
    pub fn off() -> Self {
        TelemetryConfig {
            journal: None,
            trace: 0,
            sample: [1; CATEGORY_COUNT],
        }
    }

    /// Reads `P2PMAL_JOURNAL`, `P2PMAL_TRACE` and `P2PMAL_JOURNAL_SAMPLE`
    /// (`cat=N` pairs, comma-separated: `query=10,download=1`).
    pub fn from_env() -> Self {
        let journal = std::env::var("P2PMAL_JOURNAL")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .map(PathBuf::from);
        let mut sample = [1u32; CATEGORY_COUNT];
        if let Ok(spec) = std::env::var("P2PMAL_JOURNAL_SAMPLE") {
            for part in spec.split(',') {
                let Some((cat, n)) = part.split_once('=') else {
                    continue;
                };
                if let (Some(cat), Ok(n)) =
                    (EventCategory::from_label(cat.trim()), n.trim().parse())
                {
                    sample[cat as usize] = n;
                }
            }
        }
        TelemetryConfig {
            journal,
            trace: trace_level(),
            sample,
        }
    }

    /// Builds the sink hub for one network run. `label` tags the journal
    /// file name and trace lines (`limewire` / `openft`).
    pub fn build(&self, label: &str) -> Telemetry {
        let mut sinks: Vec<Box<dyn TelemetrySink>> = Vec::new();
        if let Some(base) = &self.journal {
            let path = journal_path_for(base, label);
            match JsonlSink::create(&path) {
                Ok(sink) => sinks.push(Box::new(sink)),
                Err(e) => eprintln!("[telemetry] cannot open journal {}: {e}", path.display()),
            }
        }
        if self.trace >= 2 {
            sinks.push(Box::new(TraceSink::new(label)));
        }
        Telemetry::new(sinks, self.sample)
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::{EventBody, FaultKind};
    use super::*;
    use crate::time::SimTime;

    fn ev(t: u64) -> TelemetryEvent {
        TelemetryEvent::new(
            SimTime::from_micros(t),
            EventBody::FaultInjected {
                kind: FaultKind::Reset,
            },
        )
    }

    #[test]
    fn disabled_hub_reports_every_category_off() {
        let hub = Telemetry::disabled();
        for cat in EventCategory::ALL {
            assert!(!hub.enabled(cat));
        }
    }

    #[test]
    fn ring_sink_is_bounded_and_keeps_latest() {
        let mut ring = RingSink::new(3);
        for t in 0..5 {
            ring.record(&ev(t));
        }
        assert_eq!(ring.len(), 3);
        let ts: Vec<u64> = ring.events().map(|e| e.at.as_micros()).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    /// Shares its record log so tests can inspect a sink after boxing it
    /// into a hub.
    struct SpySink(std::sync::Arc<std::sync::Mutex<Vec<u64>>>);

    impl TelemetrySink for SpySink {
        fn record(&mut self, event: &TelemetryEvent) {
            self.0.lock().unwrap().push(event.at.as_micros());
        }
    }

    #[test]
    fn sampling_keeps_every_nth_candidate() {
        let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sample = [1u32; CATEGORY_COUNT];
        sample[EventCategory::Fault as usize] = 3;
        let mut hub = Telemetry::new(vec![Box::new(SpySink(got.clone()))], sample);
        for t in 0..9 {
            hub.emit(ev(t));
        }
        assert_eq!(*got.lock().unwrap(), vec![0, 3, 6]);
    }

    #[test]
    fn every_sink_sees_every_kept_event() {
        let a = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let b = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut hub = Telemetry::new(
            vec![Box::new(SpySink(a.clone())), Box::new(SpySink(b.clone()))],
            [1; CATEGORY_COUNT],
        );
        for t in 0..4 {
            hub.emit(ev(t));
        }
        assert_eq!(*a.lock().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(*a.lock().unwrap(), *b.lock().unwrap());
    }

    #[test]
    fn buffering_hub_retains_unsampled_and_mirrors_mask() {
        let mut mask = [true; CATEGORY_COUNT];
        mask[EventCategory::Churn as usize] = false;
        let mut hub = Telemetry::buffered(mask);
        assert!(hub.enabled(EventCategory::Fault));
        assert!(!hub.enabled(EventCategory::Churn));
        for t in 0..5 {
            hub.emit(ev(t));
        }
        let drained = hub.take_buffered();
        assert_eq!(drained.len(), 5);
        assert!(hub.take_buffered().is_empty());
    }

    #[test]
    fn zero_sample_disables_category() {
        let mut sample = [1u32; CATEGORY_COUNT];
        sample[EventCategory::Churn as usize] = 0;
        let hub = Telemetry::new(vec![Box::new(NullSink)], sample);
        assert!(!hub.enabled(EventCategory::Churn));
        assert!(hub.enabled(EventCategory::Fault));
    }

    #[test]
    fn trace_level_parsing() {
        assert_eq!(parse_trace_level(None), 0);
        assert_eq!(parse_trace_level(Some("")), 0);
        assert_eq!(parse_trace_level(Some("0")), 0);
        assert_eq!(parse_trace_level(Some("off")), 0);
        assert_eq!(parse_trace_level(Some("false")), 0);
        assert_eq!(parse_trace_level(Some("no")), 0);
        assert_eq!(parse_trace_level(Some("1")), 1);
        assert_eq!(parse_trace_level(Some("yes")), 1);
        assert_eq!(parse_trace_level(Some("2")), 2);
        assert_eq!(parse_trace_level(Some(" 2 ")), 2);
    }

    #[test]
    fn journal_paths_get_network_labels() {
        assert_eq!(
            journal_path_for(Path::new("journal.jsonl"), "limewire"),
            PathBuf::from("journal.limewire.jsonl")
        );
        assert_eq!(
            journal_path_for(Path::new("out/j"), "openft"),
            PathBuf::from("out/j.openft")
        );
    }
}
