//! Deterministic provenance identifiers for causal tracing.
//!
//! A **trace** groups every telemetry event that descends from one search:
//! the query leaving its origin, each library match, every download attempt
//! and retry the crawler makes against the returned sources, the scan
//! verdict, and any infections the verdict records. A **span** identifies
//! one event inside a trace; its `parent` is the span of the event that
//! caused it, which is what lets `trace_report` rebuild propagation trees
//! from a flat JSONL journal.
//!
//! Every id is derived with FNV-1a/64 from identifiers the simulation
//! already owns — the 16-byte Gnutella query GUID, the OpenFT search id
//! plus its origin address, download object keys (filename, size, source
//! host) and attempt counters. **Never** from wall clock and **never**
//! from a fresh RNG draw: deriving ids must not perturb the trajectory,
//! and identical seeds must produce byte-identical journals. Distinct
//! domain tags keep the id families from colliding structurally.

use std::net::Ipv4Addr;

/// Causal identity attached to a [`super::TelemetryEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// The trace (causal tree) this event belongs to.
    pub trace: u64,
    /// This event's own span id, unique within the trace.
    pub span: u64,
    /// Span id of the causing event; `None` marks a trace root.
    pub parent: Option<u64>,
}

impl SpanCtx {
    /// A root span: the first event of a trace (a query leaving its origin).
    pub fn root(trace: u64, span: u64) -> Self {
        SpanCtx {
            trace,
            span,
            parent: None,
        }
    }

    /// A child span caused by `parent`.
    pub fn child(trace: u64, span: u64, parent: u64) -> Self {
        SpanCtx {
            trace,
            span,
            parent: Some(parent),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a/64 over tagged byte material.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new(tag: &[u8]) -> Self {
        let mut h = Fnv64(FNV_OFFSET);
        h.write(tag);
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Trace id of a Gnutella search, derived from its 16-byte query GUID.
pub fn trace_from_guid(guid: &[u8; 16]) -> u64 {
    let mut h = Fnv64::new(b"trace:guid");
    h.write(guid);
    h.finish()
}

/// Trace id of an OpenFT search, derived from the originator's routable
/// address plus its per-node search id (OpenFT ids are only unique per
/// origin; the address disambiguates).
pub fn trace_from_search(ip: Ipv4Addr, port: u16, id: u32) -> u64 {
    let mut h = Fnv64::new(b"trace:search");
    h.write(&ip.octets());
    h.write(&port.to_le_bytes());
    h.write(&id.to_le_bytes());
    h.finish()
}

/// Root span of a trace (the `query_issued` event at the origin).
pub fn span_root(trace: u64) -> u64 {
    let mut h = Fnv64::new(b"span:root");
    h.write_u64(trace);
    h.finish()
}

/// Span of a `query_matched` answered by the servent with GUID `guid`.
pub fn span_match_guid(trace: u64, guid: &[u8; 16]) -> u64 {
    let mut h = Fnv64::new(b"span:match");
    h.write_u64(trace);
    h.write(guid);
    h.finish()
}

/// Span of a `query_matched` answered by the node at `ip:port` (OpenFT
/// nodes have no GUID; their routable address identifies them).
pub fn span_match_addr(trace: u64, ip: Ipv4Addr, port: u16) -> u64 {
    let mut h = Fnv64::new(b"span:match");
    h.write_u64(trace);
    h.write(&ip.octets());
    h.write(&port.to_le_bytes());
    h.finish()
}

/// Download object key: one per (filename, size, source host) the crawler
/// fetches, stable across every attempt/retry/verdict of that download.
pub fn download_obj(name: &str, size: u64, host: &str) -> u64 {
    let mut h = Fnv64::new(b"obj:download");
    h.write(name.as_bytes());
    h.write_u64(size);
    h.write(host.as_bytes());
    h.finish()
}

/// Span of `download_start` attempt `attempt` of object `obj`.
pub fn span_download(trace: u64, obj: u64, attempt: u8) -> u64 {
    let mut h = Fnv64::new(b"span:dl");
    h.write_u64(trace);
    h.write_u64(obj);
    h.write(&[attempt]);
    h.finish()
}

/// Span of the `download_retry` that schedules attempt `attempt`.
pub fn span_retry(trace: u64, obj: u64, attempt: u8) -> u64 {
    let mut h = Fnv64::new(b"span:retry");
    h.write_u64(trace);
    h.write_u64(obj);
    h.write(&[attempt]);
    h.finish()
}

/// Span of the terminal `download_complete` of object `obj`.
pub fn span_done(trace: u64, obj: u64) -> u64 {
    let mut h = Fnv64::new(b"span:done");
    h.write_u64(trace);
    h.write_u64(obj);
    h.finish()
}

/// Span of the `scan_verdict` for object `obj`.
pub fn span_scan(trace: u64, obj: u64) -> u64 {
    let mut h = Fnv64::new(b"span:scan");
    h.write_u64(trace);
    h.write_u64(obj);
    h.finish()
}

/// Span of the `idx`-th `infection` recorded by object `obj`'s verdict.
pub fn span_infection(trace: u64, obj: u64, idx: u64) -> u64 {
    let mut h = Fnv64::new(b"span:inf");
    h.write_u64(trace);
    h.write_u64(obj);
    h.write_u64(idx);
    h.finish()
}

/// Journal rendering of an id: fixed-width lowercase hex. Ids are 64-bit
/// and the workspace JSON value stores numbers as `f64` (exact only below
/// 2^53), so the journal carries them as 16-char strings.
pub fn span_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Inverse of [`span_hex`]; accepts any non-empty hex string up to 16
/// digits so hand-edited journals still parse.
pub fn parse_span_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_tagged() {
        let guid = [7u8; 16];
        let t = trace_from_guid(&guid);
        // Deterministic: same input, same id.
        assert_eq!(t, trace_from_guid(&guid));
        // Domain tags separate id families built from the same material.
        let obj = download_obj("setup.exe", 100, "1.2.3.4:6346");
        assert_ne!(span_download(t, obj, 0), span_retry(t, obj, 0));
        assert_ne!(span_done(t, obj), span_scan(t, obj));
        assert_ne!(span_root(t), t);
        // Attempts produce distinct spans.
        assert_ne!(span_download(t, obj, 0), span_download(t, obj, 1));
    }

    #[test]
    fn search_traces_disambiguate_by_origin() {
        let a = trace_from_search(Ipv4Addr::new(10, 0, 0, 1), 1215, 1);
        let b = trace_from_search(Ipv4Addr::new(10, 0, 0, 2), 1215, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn hex_round_trips() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            let s = span_hex(id);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_span_hex(&s), Some(id));
        }
        assert_eq!(parse_span_hex(""), None);
        assert_eq!(parse_span_hex("xyz"), None);
        assert_eq!(parse_span_hex("00000000000000000"), None);
    }
}
