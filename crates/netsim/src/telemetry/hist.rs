//! Log2-bucket histograms: fixed-size, allocation-free, exactly mergeable.
//!
//! A value `v` lands in bucket `bit_length(v)` (bucket 0 holds only zero),
//! so the 65 buckets cover the full `u64` range with one increment per
//! record. Percentiles are extracted by rank-walking the buckets and
//! clamping the bucket's upper edge into the observed `[min, max]` range —
//! coarse, but deterministic, cheap, and honest about its resolution.
//!
//! Recording sim-time quantities keeps the histogram deterministic (it
//! derives `Eq`); wall-clock quantities must go through the always-equal
//! wrapper in [`crate::telemetry::registry`], mirroring
//! [`crate::SubsystemProfile`].

/// Number of buckets: one per possible `u64` bit length, plus zero.
pub const LOG2_BUCKETS: usize = 65;

/// Index of the bucket a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper edge of a bucket (`2^i - 1`; `u64::MAX` for the last).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The count/min/p50/p90/p99/max roll-up reported by trace lines,
/// `BENCH_study.json` and run artifacts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub min: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// A log2-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    count: u64,
    /// Exact sum (u128: 2^64 samples of u64::MAX cannot overflow it).
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            counts: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Raw per-bucket counts (bucket `i` holds values of bit length `i`).
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at percentile `p` (0–100): the upper edge of the bucket
    /// containing the sample of rank `ceil(p/100 * count)`, clamped into
    /// `[min, max]`. Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (exact: bucket-wise sums).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for i in 0..LOG2_BUCKETS {
            self.counts[i] += other.counts[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The count/min/p50/p90/p99/max roll-up.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            min: self.min(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 is its own bucket; powers of two open a new bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 2);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.buckets()[64], 1);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(
            h.summary(),
            HistSummary {
                count: 0,
                min: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                max: 0
            }
        );
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn single_sample_every_percentile_is_that_sample() {
        let mut h = Log2Histogram::new();
        h.record(1234);
        for p in [0.1, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 1234, "p{p}");
        }
        assert_eq!(h.min(), 1234);
        assert_eq!(h.max(), 1234);
        assert_eq!(h.mean(), 1234);
    }

    #[test]
    fn u64_max_sample_does_not_overflow() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(99.0), u64::MAX);
        // Sum is exact in u128.
        assert_eq!(h.mean(), (2 * (u64::MAX as u128) / 3) as u64);
    }

    #[test]
    fn percentiles_walk_ranks() {
        let mut h = Log2Histogram::new();
        // 90 samples of ~100 (bucket 7), 10 samples of ~1000 (bucket 10).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        // p50 falls in the low bucket: upper edge 127.
        assert_eq!(h.percentile(50.0), 127);
        assert_eq!(h.percentile(90.0), 127);
        // p99 falls in the high bucket; clamped to max=1000.
        assert_eq!(h.percentile(99.0), 1000);
        assert_eq!(h.summary().max, 1000);
        assert_eq!(h.summary().min, 100);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut both = Log2Histogram::new();
        for v in [1u64, 5, 9, 100] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 7, 4096, u64::MAX] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Log2Histogram::new());
        assert_eq!(a, before);
    }
}
