//! IPv4 addressing for the simulated internet.
//!
//! The paper's most surprising source-analysis result — 28% of malicious
//! LimeWire responses advertising RFC 1918 private addresses — exists because
//! Gnutella servents embed their *locally configured* IP in QUERYHIT
//! payloads; hosts behind NAT therefore leak unroutable addresses. The
//! simulator models this by giving every node an `external` (routable)
//! address and a `local` (self-perceived) address, which differ for NATed
//! nodes.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::fmt;
use std::net::Ipv4Addr;

/// A transport endpoint: IPv4 address plus TCP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostAddr {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl HostAddr {
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        HostAddr { ip, port }
    }

    /// Classification of the IP per RFC 1918 / RFC 1122 / RFC 3927.
    pub fn class(&self) -> IpClass {
        ip_class(self.ip)
    }

    /// True when the address is not publicly routable — the category the
    /// paper's Table of sources calls "private address ranges".
    pub fn is_private(&self) -> bool {
        self.class() != IpClass::Public
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Address-range classes used by the study's source analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpClass {
    Public,
    /// 10.0.0.0/8
    Private10,
    /// 172.16.0.0/12
    Private172,
    /// 192.168.0.0/16
    Private192,
    /// 127.0.0.0/8
    Loopback,
    /// 169.254.0.0/16
    LinkLocal,
    /// 0.0.0.0/8
    Zero,
}

impl IpClass {
    pub fn label(&self) -> &'static str {
        match self {
            IpClass::Public => "public",
            IpClass::Private10 => "10.0.0.0/8",
            IpClass::Private172 => "172.16.0.0/12",
            IpClass::Private192 => "192.168.0.0/16",
            IpClass::Loopback => "127.0.0.0/8",
            IpClass::LinkLocal => "169.254.0.0/16",
            IpClass::Zero => "0.0.0.0/8",
        }
    }
}

/// Classifies an IPv4 address into the ranges the study distinguishes.
pub fn ip_class(ip: Ipv4Addr) -> IpClass {
    let o = ip.octets();
    match o {
        [0, ..] => IpClass::Zero,
        [10, ..] => IpClass::Private10,
        [127, ..] => IpClass::Loopback,
        [169, 254, ..] => IpClass::LinkLocal,
        [172, b, ..] if (16..32).contains(&b) => IpClass::Private172,
        [192, 168, ..] => IpClass::Private192,
        _ => IpClass::Public,
    }
}

/// Deterministically allocates unique IPv4 addresses from public or private
/// pools.
pub struct AddressAllocator {
    used: HashSet<Ipv4Addr>,
}

impl Default for AddressAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressAllocator {
    pub fn new() -> Self {
        AddressAllocator {
            used: HashSet::new(),
        }
    }

    /// Allocates a fresh publicly routable address.
    pub fn alloc_public(&mut self, rng: &mut StdRng) -> Ipv4Addr {
        loop {
            let ip = Ipv4Addr::new(
                rng.gen_range(1..=223),
                rng.gen_range(0..=255),
                rng.gen_range(0..=255),
                rng.gen_range(1..=254),
            );
            if ip_class(ip) == IpClass::Public && self.used.insert(ip) {
                return ip;
            }
        }
    }

    /// Allocates a fresh RFC 1918 address, mixing all three ranges with the
    /// relative weights observed in deployed home networks (192.168/16
    /// dominates, then 10/8, then 172.16/12).
    pub fn alloc_private(&mut self, rng: &mut StdRng) -> Ipv4Addr {
        loop {
            let ip = match rng.gen_range(0..10) {
                0..=5 => Ipv4Addr::new(192, 168, rng.gen_range(0..=255), rng.gen_range(1..=254)),
                6..=8 => Ipv4Addr::new(
                    10,
                    rng.gen_range(0..=255),
                    rng.gen_range(0..=255),
                    rng.gen_range(1..=254),
                ),
                _ => Ipv4Addr::new(
                    172,
                    rng.gen_range(16..32),
                    rng.gen_range(0..=255),
                    rng.gen_range(1..=254),
                ),
            };
            if self.used.insert(ip) {
                return ip;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classification() {
        assert_eq!(ip_class(Ipv4Addr::new(8, 8, 8, 8)), IpClass::Public);
        assert_eq!(ip_class(Ipv4Addr::new(10, 1, 2, 3)), IpClass::Private10);
        assert_eq!(ip_class(Ipv4Addr::new(172, 16, 0, 1)), IpClass::Private172);
        assert_eq!(
            ip_class(Ipv4Addr::new(172, 31, 255, 1)),
            IpClass::Private172
        );
        assert_eq!(ip_class(Ipv4Addr::new(172, 32, 0, 1)), IpClass::Public);
        assert_eq!(ip_class(Ipv4Addr::new(172, 15, 0, 1)), IpClass::Public);
        assert_eq!(ip_class(Ipv4Addr::new(192, 168, 1, 1)), IpClass::Private192);
        assert_eq!(ip_class(Ipv4Addr::new(192, 169, 1, 1)), IpClass::Public);
        assert_eq!(ip_class(Ipv4Addr::new(127, 0, 0, 1)), IpClass::Loopback);
        assert_eq!(ip_class(Ipv4Addr::new(169, 254, 9, 9)), IpClass::LinkLocal);
        assert_eq!(ip_class(Ipv4Addr::new(0, 0, 0, 0)), IpClass::Zero);
    }

    #[test]
    fn public_allocations_are_unique_and_public() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = AddressAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            let ip = a.alloc_public(&mut rng);
            assert_eq!(ip_class(ip), IpClass::Public, "{ip}");
            assert!(seen.insert(ip), "duplicate {ip}");
        }
    }

    #[test]
    fn private_allocations_are_private_and_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = AddressAllocator::new();
        let mut seen = HashSet::new();
        let mut classes = HashSet::new();
        for _ in 0..5000 {
            let ip = a.alloc_private(&mut rng);
            let c = ip_class(ip);
            assert!(
                matches!(
                    c,
                    IpClass::Private10 | IpClass::Private172 | IpClass::Private192
                ),
                "{ip} classified {c:?}"
            );
            classes.insert(c);
            assert!(seen.insert(ip), "duplicate {ip}");
        }
        // All three RFC1918 ranges should appear in a big enough sample.
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn allocation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = AddressAllocator::new();
            (0..100)
                .map(|_| a.alloc_public(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn host_addr_display_and_privacy() {
        let a = HostAddr::new(Ipv4Addr::new(192, 168, 0, 10), 6346);
        assert_eq!(a.to_string(), "192.168.0.10:6346");
        assert!(a.is_private());
        assert!(!HostAddr::new(Ipv4Addr::new(4, 4, 4, 4), 80).is_private());
    }
}
