//! Aggregate counters the harness reads after (or during) a run.

use crate::profile::SubsystemProfile;
use crate::telemetry::MetricsRegistry;

/// Memory accounting snapshot, filled in by [`crate::Simulator::record_memory`].
///
/// `app_bytes` sums every live app's [`crate::App::memory_estimate`] — a
/// deterministic deep-heap estimate of protocol state (connection maps,
/// routing tables, share libraries). The RSS gauges read
/// `/proc/self/status` and are inherently wall-machine facts, so the whole
/// struct hides behind an always-equal `PartialEq` shield (the same device
/// as [`SubsystemProfile`]): identical-seed metric snapshots stay equal
/// even though their RSS readings differ.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryStats {
    /// Live nodes whose app contributed to `app_bytes`.
    pub nodes: u64,
    /// Summed per-app deep-heap estimates (bytes).
    pub app_bytes: u64,
    /// Process peak resident set (`VmHWM`, KiB; 0 where unsupported).
    pub peak_rss_kb: u64,
    /// Process current resident set (`VmRSS`, KiB; 0 where unsupported).
    pub current_rss_kb: u64,
}

impl MemoryStats {
    /// Estimated protocol-state bytes per node (0 when no nodes recorded).
    pub fn bytes_per_node(&self) -> u64 {
        self.app_bytes.checked_div(self.nodes).unwrap_or(0)
    }

    /// True when nothing was recorded (the accounting pass never ran).
    pub fn is_empty(&self) -> bool {
        self.nodes == 0 && self.peak_rss_kb == 0
    }

    pub(crate) fn merge(&mut self, other: &MemoryStats) {
        self.nodes += other.nodes;
        self.app_bytes += other.app_bytes;
        self.peak_rss_kb = self.peak_rss_kb.max(other.peak_rss_kb);
        self.current_rss_kb = self.current_rss_kb.max(other.current_rss_kb);
    }
}

/// Wall-machine diagnostics: compares equal to anything (see struct docs).
impl PartialEq for MemoryStats {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for MemoryStats {}

/// Reads `(VmHWM, VmRSS)` in KiB from `/proc/self/status`; `(0, 0)` on
/// platforms without procfs or when the read fails.
pub fn process_rss_kb() -> (u64, u64) {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return (0, 0);
        };
        let field = |key: &str| {
            status
                .lines()
                .find(|l| l.starts_with(key))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        (field("VmHWM:"), field("VmRSS:"))
    }
    #[cfg(not(target_os = "linux"))]
    {
        (0, 0)
    }
}

/// Simulation-wide counters. All counts are cumulative since construction.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimMetrics {
    /// Events dispatched by the scheduler.
    pub events_processed: u64,
    /// Successful connection establishments.
    pub conns_established: u64,
    /// Failed connection attempts (no listener / NAT / dead node).
    pub conns_failed: u64,
    /// Connections torn down.
    pub conns_closed: u64,
    /// Application payload bytes delivered end-to-end.
    pub bytes_delivered: u64,
    /// Bytes dropped because they were sent on closed/pending connections.
    pub bytes_dropped: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Nodes spawned over the lifetime of the simulation.
    pub nodes_spawned: u64,
    /// Nodes taken offline (churn or shutdown).
    pub nodes_stopped: u64,
    /// Payload buffer acquisitions served from the recycling pool.
    pub pool_hits: u64,
    /// Payload buffer acquisitions that had to allocate.
    pub pool_misses: u64,
    /// Total buffer capacity (bytes) returned to the pool.
    pub pool_recycled_bytes: u64,
    /// Peak number of buffers held on the pool's free list.
    pub pool_high_water: u64,
    /// Peak number of simultaneously scheduled events.
    pub queue_high_water: u64,
    /// Fault injection: chunks dropped by the fault plan.
    pub faults_chunks_dropped: u64,
    /// Fault injection: chunks delivered corrupted (truncated/bit-flipped).
    pub faults_chunks_corrupted: u64,
    /// Fault injection: spontaneous connection resets.
    pub faults_resets: u64,
    /// Fault injection: connections established with a latency spike.
    pub faults_latency_spikes: u64,
    /// Fault injection: churn sessions taking a node offline.
    pub faults_churn_downs: u64,
    /// Fault injection: churn sessions bringing a node back.
    pub faults_churn_ups: u64,
    /// Download retries scheduled by the crawlers. Harness-filled, like the
    /// `scan_*` counters below.
    pub dl_retries: u64,
    /// Download retries that subsequently succeeded.
    pub dl_retry_successes: u64,
    /// Download bodies entering the scan pipeline. Filled in by harnesses
    /// that run a scanning crawler (see `p2pmal-core`); the simulator core
    /// does not compute these.
    pub scan_bodies: u64,
    /// Bytes SHA-1 hashed by the scan pipeline.
    pub scan_bytes_hashed: u64,
    /// Verdict-cache hits (bodies resolved without running the scanner).
    pub scan_cache_hits: u64,
    /// Verdict-cache misses (bodies fully scanned).
    pub scan_cache_misses: u64,
    /// Verdict-cache evictions (capacity pressure; 0 on realistic runs).
    pub scan_cache_evictions: u64,
    /// Distinct payload digests observed by the scan pipeline.
    pub scan_distinct_payloads: u64,
    /// Per-subsystem wall-clock profile. Diagnostics only: it compares
    /// equal to any other profile, so identical-seed metric snapshots stay
    /// equal even though their wall timings differ.
    pub timing: SubsystemProfile,
    /// Memory accounting (bytes-per-node estimate, RSS gauges). Filled by
    /// [`crate::Simulator::record_memory`]; always-equal like `timing`.
    pub memory: MemoryStats,
    /// Named counters, gauges and log2 histograms recorded by the simulator
    /// and by instrumented apps via [`crate::Ctx::registry`]. Sim-keyed
    /// entries are deterministic and participate in `Eq`; wall-clock
    /// histograms hide behind the always-equal `WallHists` shield.
    pub telemetry: MetricsRegistry,
}

impl SimMetrics {
    /// Folds another snapshot into this one: counters sum, high-water marks
    /// take the max, and the profile/registry merge field-wise. The sharded
    /// simulator keeps one `SimMetrics` per shard and merges them into the
    /// snapshot `Simulator::metrics` hands out.
    pub fn merge(&mut self, other: &SimMetrics) {
        self.events_processed += other.events_processed;
        self.conns_established += other.conns_established;
        self.conns_failed += other.conns_failed;
        self.conns_closed += other.conns_closed;
        self.bytes_delivered += other.bytes_delivered;
        self.bytes_dropped += other.bytes_dropped;
        self.timers_fired += other.timers_fired;
        self.nodes_spawned += other.nodes_spawned;
        self.nodes_stopped += other.nodes_stopped;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_recycled_bytes += other.pool_recycled_bytes;
        self.pool_high_water = self.pool_high_water.max(other.pool_high_water);
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.faults_chunks_dropped += other.faults_chunks_dropped;
        self.faults_chunks_corrupted += other.faults_chunks_corrupted;
        self.faults_resets += other.faults_resets;
        self.faults_latency_spikes += other.faults_latency_spikes;
        self.faults_churn_downs += other.faults_churn_downs;
        self.faults_churn_ups += other.faults_churn_ups;
        self.dl_retries += other.dl_retries;
        self.dl_retry_successes += other.dl_retry_successes;
        self.scan_bodies += other.scan_bodies;
        self.scan_bytes_hashed += other.scan_bytes_hashed;
        self.scan_cache_hits += other.scan_cache_hits;
        self.scan_cache_misses += other.scan_cache_misses;
        self.scan_cache_evictions += other.scan_cache_evictions;
        self.scan_distinct_payloads += other.scan_distinct_payloads;
        self.memory.merge(&other.memory);
        self.timing.merge(&other.timing);
        self.telemetry.merge(&other.telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = SimMetrics::default();
        assert_eq!(m.events_processed, 0);
        assert_eq!(m.bytes_delivered, 0);
    }
}
