//! CRC-32 with the IEEE 802.3 (reflected 0x04C11DB7 → 0xEDB88320) polynomial,
//! as required by the ZIP format. Slice-by-8: eight lookup tables let the
//! inner loop fold eight input bytes per iteration instead of one.

use std::sync::OnceLock;

/// Lazily built slice-by-8 tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][i]` advances the CRC of byte `i` through `k` additional
/// zero bytes, so eight table reads fold a whole 64-bit word.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
            crc = t[7][(lo & 0xff) as usize]
                ^ t[6][((lo >> 8) & 0xff) as usize]
                ^ t[5][((lo >> 16) & 0xff) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xff) as usize]
                ^ t[2][((hi >> 8) & 0xff) as usize]
                ^ t[1][((hi >> 16) & 0xff) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = t[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// CRC-32 of every buffer in a batch. One table resolution and one state
/// object cover the whole slice, so bulk integrity checks (a scan batch's
/// bodies) skip the per-call setup of repeated [`crc32`] invocations.
pub fn crc32_many<'a, I>(bodies: I) -> Vec<u32>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    // Force the lazy tables once, outside the loop.
    let _ = tables();
    bodies
        .into_iter()
        .map(|body| {
            let mut c = Crc32::new();
            c.update(body);
            c.finalize()
        })
        .collect()
}

/// Reference byte-at-a-time CRC-32, kept for equivalence tests and the
/// old-vs-new benchmark in `perf_archive`.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = t[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..500u32).map(|i| (i % 256) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn slice8_matches_bytewise() {
        // All alignments and lengths around the 8-byte fold boundary, plus a
        // pseudo-random buffer split at unaligned offsets.
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for start in 0..8 {
            for len in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1000] {
                let slice = &data[start..(start + len).min(data.len())];
                assert_eq!(
                    crc32(slice),
                    crc32_bytewise(slice),
                    "start {start} len {len}"
                );
            }
        }
    }

    #[test]
    fn crc32_many_matches_oneshot() {
        let bodies: Vec<Vec<u8>> = (0..6usize)
            .map(|n| (0..n * 13).map(|i| (i * 31 + n) as u8).collect())
            .collect();
        let batched = crc32_many(bodies.iter().map(|b| b.as_slice()));
        for (body, crc) in bodies.iter().zip(&batched) {
            assert_eq!(*crc, crc32(body));
        }
    }

    #[test]
    fn differs_on_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
