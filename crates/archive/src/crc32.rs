//! CRC-32 with the IEEE 802.3 (reflected 0x04C11DB7 → 0xEDB88320) polynomial,
//! as required by the ZIP format. Table-driven, one byte at a time.

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..500u32).map(|i| (i % 256) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn differs_on_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
