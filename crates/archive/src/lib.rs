//! Archive handling built from scratch: CRC-32, DEFLATE (RFC 1951) and ZIP.
//!
//! The IMC 2006 study downloaded every query response that looked like an
//! executable *or an archive* and scanned it; archives therefore need to be
//! opened before signature matching. This crate supplies that capability to
//! `p2pmal-scanner` and lets `p2pmal-corpus` fabricate realistic
//! malware-in-a-zip payloads:
//!
//! * [`mod@crc32`] — table-driven CRC-32 (IEEE 802.3 polynomial), as used by ZIP.
//! * [`mod@inflate`] — a complete RFC 1951 decompressor (stored, fixed-Huffman
//!   and dynamic-Huffman blocks), hardened against malformed input.
//! * [`mod@deflate`] — a compressor producing stored or fixed-Huffman blocks with
//!   a hash-chain LZ77 matcher.
//! * [`zip`] — a ZIP reader/writer supporting the `stored` and `deflate`
//!   methods, local file headers, the central directory and EOCD record.
//!
//! ```
//! use p2pmal_archive::zip::{ZipWriter, ZipArchive, Method};
//! let mut w = ZipWriter::new();
//! w.add("setup.exe", b"MZ fake executable body", Method::Deflate);
//! let bytes = w.finish();
//! let archive = ZipArchive::parse(&bytes).unwrap();
//! assert_eq!(archive.entries()[0].name, "setup.exe");
//! assert_eq!(archive.read(0).unwrap(), b"MZ fake executable body");
//! ```

pub mod crc32;
pub mod deflate;
pub mod inflate;
pub mod zip;

pub use crc32::{crc32, crc32_bytewise, crc32_many, Crc32};
pub use deflate::deflate;
pub use inflate::{inflate, inflate_into, InflateError};
pub use zip::{Method, ZipArchive, ZipEntry, ZipError, ZipWriter};
