//! A DEFLATE (RFC 1951) compressor.
//!
//! Produces a single fixed-Huffman block (BTYPE=01) with a greedy hash-chain
//! LZ77 matcher, or a chain of stored blocks via [`deflate_stored`]. Fixed
//! Huffman keeps the encoder compact while still producing genuinely
//! compressed output that any inflater (including ours) accepts; dynamic
//! Huffman would only improve ratios, not correctness, and the study needs
//! realistic archives rather than optimal ones.

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 32 * 1024;
const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Longest hash chain walked per position; bounds worst-case time.
const MAX_CHAIN: usize = 128;

/// LSB-first bit writer matching DEFLATE's bit packing.
struct BitWriter {
    out: Vec<u8>,
    bit_buf: u32,
    bit_count: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Writes `n` bits of `v`, LSB first (extra-bit fields, block headers).
    fn bits(&mut self, v: u32, n: u32) {
        self.bit_buf |= v << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code: RFC 1951 packs codes most-significant bit
    /// first, so the code is bit-reversed into the LSB-first stream.
    fn code(&mut self, code: u32, len: u32) {
        let mut rev = 0u32;
        for i in 0..len {
            rev |= ((code >> i) & 1) << (len - 1 - i);
        }
        self.bits(rev, len);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xff) as u8);
        }
        self.out
    }
}

/// Fixed literal/length code for `sym`, returning `(code, bits)`.
fn fixed_lit_code(sym: u16) -> (u32, u32) {
    match sym {
        0..=143 => (0x30 + sym as u32, 8),
        144..=255 => (0x190 + (sym as u32 - 144), 9),
        256..=279 => (sym as u32 - 256, 7),
        _ => (0xC0 + (sym as u32 - 280), 8),
    }
}

/// Maps a match length (3..=258) to `(symbol, extra_bits, extra_value)`.
fn length_code(len: usize) -> (u16, u32, u32) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    const BASE: [u16; 29] = [
        3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
        131, 163, 195, 227, 258,
    ];
    const EXTRA: [u8; 29] = [
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
    ];
    let mut i = 28;
    while BASE[i] as usize > len {
        i -= 1;
    }
    (
        257 + i as u16,
        EXTRA[i] as u32,
        (len - BASE[i] as usize) as u32,
    )
}

/// Maps a match distance (1..=32768) to `(symbol, extra_bits, extra_value)`.
fn dist_code(dist: usize) -> (u16, u32, u32) {
    const BASE: [u16; 30] = [
        1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
        2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
    ];
    const EXTRA: [u8; 30] = [
        0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
        13, 13,
    ];
    let mut i = 29;
    while BASE[i] as usize > dist {
        i -= 1;
    }
    (i as u16, EXTRA[i] as u32, (dist - BASE[i] as usize) as u32)
}

fn hash3(data: &[u8], pos: usize) -> usize {
    let h = (data[pos] as u32) << 16 | (data[pos + 1] as u32) << 8 | data[pos + 2] as u32;
    (h.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize & (HASH_SIZE - 1)
}

/// Compresses `data` into a single fixed-Huffman DEFLATE block.
pub fn deflate(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.bits(1, 1); // BFINAL
    w.bits(1, 2); // BTYPE=01 fixed Huffman

    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut pos = 0;
    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && pos - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - pos).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = pos - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH && best_dist >= 1 {
            let (lsym, lextra, lval) = length_code(best_len);
            let (code, bits) = fixed_lit_code(lsym);
            w.code(code, bits);
            w.bits(lval, lextra);
            let (dsym, dextra, dval) = dist_code(best_dist);
            w.code(dsym as u32, 5);
            w.bits(dval, dextra);
            // Insert every covered position into the hash chains so later
            // matches can reference inside this match.
            for p in pos..(pos + best_len).min(data.len().saturating_sub(MIN_MATCH - 1)) {
                let h = hash3(data, p);
                prev[p % WINDOW] = head[h];
                head[h] = p;
            }
            pos += best_len;
        } else {
            let (code, bits) = fixed_lit_code(data[pos] as u16);
            w.code(code, bits);
            if pos + MIN_MATCH <= data.len() {
                let h = hash3(data, pos);
                prev[pos % WINDOW] = head[h];
                head[h] = pos;
            }
            pos += 1;
        }
    }
    let (code, bits) = fixed_lit_code(256);
    w.code(code, bits);
    w.finish()
}

/// Encodes `data` as uncompressed stored blocks (BTYPE=00).
///
/// Useful when byte-exact output sizes matter more than compression, e.g.
/// when the corpus fabricates archives with prescribed on-disk sizes.
pub fn deflate_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 5 * (data.len() / 0xFFFF + 1));
    let mut chunks = data.chunks(0xFFFF).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0, 0, 0xFF, 0xFF]);
        return out;
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        out.push(if last { 1 } else { 0 });
        out.extend_from_slice(&(chunk.len() as u16).to_le_bytes());
        out.extend_from_slice(&(!(chunk.len() as u16)).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;
    use proptest::prelude::*;
    use rand::{Rng, RngCore, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let comp = deflate(data);
        assert_eq!(inflate(&comp, data.len().max(1) * 2 + 64).unwrap(), data);
        let stored = deflate_stored(data);
        assert_eq!(inflate(&stored, data.len() + 64).unwrap(), data);
    }

    #[test]
    fn empty() {
        roundtrip(b"");
    }

    #[test]
    fn single_byte() {
        roundtrip(b"x");
    }

    #[test]
    fn short_text() {
        roundtrip(b"hello hello hello hello");
    }

    #[test]
    fn highly_repetitive_compresses() {
        let data = vec![b'a'; 100_000];
        let comp = deflate(&data);
        assert!(comp.len() < data.len() / 50, "got {} bytes", comp.len());
        assert_eq!(inflate(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for len in [1, 2, 3, 255, 256, 1000, 65535, 65536, 200_000] {
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            roundtrip(&data);
        }
    }

    #[test]
    fn structured_data_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        // Mixture of runs and random segments exercises match emission.
        let mut data = Vec::new();
        for _ in 0..200 {
            if rng.gen_bool(0.5) {
                let b: u8 = rng.gen();
                let n = rng.gen_range(1..300);
                data.extend(std::iter::repeat_n(b, n));
            } else {
                let n = rng.gen_range(1..50);
                data.extend((0..n).map(|_| rng.gen::<u8>()));
            }
        }
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_encoded_correctly() {
        // "abcabcabc..." produces distance-3 matches longer than 3.
        let data: Vec<u8> = b"abc".iter().cycle().take(500).copied().collect();
        roundtrip(&data);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let comp = deflate(&data);
            prop_assert_eq!(inflate(&comp, data.len() + 64).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_compressible(
            runs in proptest::collection::vec((any::<u8>(), 1usize..64), 0..64)
        ) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.extend(std::iter::repeat_n(b, n));
            }
            let comp = deflate(&data);
            prop_assert_eq!(inflate(&comp, data.len() + 64).unwrap(), data);
        }
    }
}
