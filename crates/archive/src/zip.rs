//! A ZIP (PKWARE APPNOTE) archive reader and writer.
//!
//! Supports the two methods that matter for 2006-era P2P content: `stored`
//! (0) and `deflate` (8). The reader locates the end-of-central-directory
//! record, walks the central directory, and cross-checks each entry against
//! its local file header; extracted data is CRC-verified. All parsing treats
//! the input as hostile — P2P downloads are exactly the adversarial case the
//! paper studies — so malformed structure yields typed errors, never panics.

use crate::crc32::crc32;
use crate::deflate::deflate;
use crate::inflate::{inflate_into, InflateError};

const LOCAL_SIG: u32 = 0x04034b50;
const CENTRAL_SIG: u32 = 0x02014b50;
const EOCD_SIG: u32 = 0x06054b50;

/// Compression method for a ZIP entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Method 0: no compression.
    Stored,
    /// Method 8: DEFLATE.
    Deflate,
}

impl Method {
    fn id(self) -> u16 {
        match self {
            Method::Stored => 0,
            Method::Deflate => 8,
        }
    }

    fn from_id(id: u16) -> Option<Self> {
        match id {
            0 => Some(Method::Stored),
            8 => Some(Method::Deflate),
            _ => None,
        }
    }
}

/// Errors from parsing or extracting a ZIP archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipError {
    /// No end-of-central-directory record found.
    MissingEocd,
    /// Structure truncated or offsets out of range.
    Truncated,
    /// A signature did not match its expected magic.
    BadSignature,
    /// Compression method other than stored/deflate.
    UnsupportedMethod(u16),
    /// Entry name is not valid UTF-8.
    BadName,
    /// CRC-32 of extracted data did not match the directory entry.
    CrcMismatch { expected: u32, actual: u32 },
    /// Declared uncompressed size disagrees with extracted data.
    SizeMismatch { expected: u32, actual: usize },
    /// DEFLATE stream was invalid.
    Inflate(InflateError),
    /// Entry index out of range.
    NoSuchEntry(usize),
    /// Uncompressed size exceeds the reader's configured ceiling.
    EntryTooLarge(u64),
}

impl std::fmt::Display for ZipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipError::MissingEocd => write!(f, "no end-of-central-directory record"),
            ZipError::Truncated => write!(f, "zip structure truncated"),
            ZipError::BadSignature => write!(f, "bad zip signature"),
            ZipError::UnsupportedMethod(m) => write!(f, "unsupported compression method {m}"),
            ZipError::BadName => write!(f, "entry name is not valid UTF-8"),
            ZipError::CrcMismatch { expected, actual } => {
                write!(f, "crc mismatch: expected {expected:08x}, got {actual:08x}")
            }
            ZipError::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected}, got {actual}")
            }
            ZipError::Inflate(e) => write!(f, "deflate error: {e}"),
            ZipError::NoSuchEntry(i) => write!(f, "no entry {i}"),
            ZipError::EntryTooLarge(n) => write!(f, "entry of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for ZipError {}

impl From<InflateError> for ZipError {
    fn from(e: InflateError) -> Self {
        ZipError::Inflate(e)
    }
}

/// Metadata for one archive member, from the central directory.
#[derive(Debug, Clone)]
pub struct ZipEntry {
    pub name: String,
    pub method: Method,
    pub crc32: u32,
    pub compressed_size: u32,
    pub uncompressed_size: u32,
    /// Offset of the local file header within the archive.
    pub local_header_offset: u32,
}

/// A parsed ZIP archive borrowing the underlying bytes.
pub struct ZipArchive<'a> {
    data: &'a [u8],
    entries: Vec<ZipEntry>,
    /// Per-entry decompression ceiling (zip-bomb guard).
    max_entry_size: u64,
}

fn le16(data: &[u8], off: usize) -> Result<u16, ZipError> {
    data.get(off..off + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
        .ok_or(ZipError::Truncated)
}

fn le32(data: &[u8], off: usize) -> Result<u32, ZipError> {
    data.get(off..off + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(ZipError::Truncated)
}

impl<'a> ZipArchive<'a> {
    /// Parses the archive structure with the default 64 MiB per-entry limit.
    pub fn parse(data: &'a [u8]) -> Result<Self, ZipError> {
        Self::parse_with_limit(data, 64 << 20)
    }

    /// Parses with an explicit per-entry decompressed-size ceiling.
    pub fn parse_with_limit(data: &'a [u8], max_entry_size: u64) -> Result<Self, ZipError> {
        // EOCD: scan backwards for the signature; the record has a variable
        // length comment so it is not at a fixed offset.
        if data.len() < 22 {
            return Err(ZipError::MissingEocd);
        }
        let mut eocd = None;
        let scan_floor = data.len().saturating_sub(22 + 0xFFFF);
        let mut off = data.len() - 22;
        loop {
            if le32(data, off)? == EOCD_SIG {
                eocd = Some(off);
                break;
            }
            if off == scan_floor {
                break;
            }
            off -= 1;
        }
        let eocd = eocd.ok_or(ZipError::MissingEocd)?;
        let total_entries = le16(data, eocd + 10)? as usize;
        let cd_offset = le32(data, eocd + 16)? as usize;

        let mut entries = Vec::with_capacity(total_entries.min(4096));
        let mut pos = cd_offset;
        for _ in 0..total_entries {
            if le32(data, pos)? != CENTRAL_SIG {
                return Err(ZipError::BadSignature);
            }
            let method_id = le16(data, pos + 10)?;
            let method =
                Method::from_id(method_id).ok_or(ZipError::UnsupportedMethod(method_id))?;
            let crc = le32(data, pos + 16)?;
            let csize = le32(data, pos + 20)?;
            let usize_ = le32(data, pos + 24)?;
            let name_len = le16(data, pos + 28)? as usize;
            let extra_len = le16(data, pos + 30)? as usize;
            let comment_len = le16(data, pos + 32)? as usize;
            let lho = le32(data, pos + 42)?;
            let name_bytes = data
                .get(pos + 46..pos + 46 + name_len)
                .ok_or(ZipError::Truncated)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| ZipError::BadName)?
                .to_string();
            entries.push(ZipEntry {
                name,
                method,
                crc32: crc,
                compressed_size: csize,
                uncompressed_size: usize_,
                local_header_offset: lho,
            });
            pos += 46 + name_len + extra_len + comment_len;
        }
        Ok(ZipArchive {
            data,
            entries,
            max_entry_size,
        })
    }

    /// Central-directory entries in archive order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Extracts and CRC-verifies entry `index`.
    pub fn read(&self, index: usize) -> Result<Vec<u8>, ZipError> {
        let mut out = Vec::new();
        self.read_into(index, &mut out)?;
        Ok(out)
    }

    /// Like [`ZipArchive::read`], but decompresses into a caller-supplied
    /// buffer (cleared first) so archive traversal can recycle one scratch
    /// allocation per nesting level instead of allocating per member. On
    /// error the buffer contents are unspecified (but remain reusable).
    pub fn read_into(&self, index: usize, out: &mut Vec<u8>) -> Result<(), ZipError> {
        out.clear();
        let entry = self
            .entries
            .get(index)
            .ok_or(ZipError::NoSuchEntry(index))?;
        if entry.uncompressed_size as u64 > self.max_entry_size {
            return Err(ZipError::EntryTooLarge(entry.uncompressed_size as u64));
        }
        let lho = entry.local_header_offset as usize;
        if le32(self.data, lho)? != LOCAL_SIG {
            return Err(ZipError::BadSignature);
        }
        let name_len = le16(self.data, lho + 26)? as usize;
        let extra_len = le16(self.data, lho + 28)? as usize;
        let data_start = lho + 30 + name_len + extra_len;
        let comp = self
            .data
            .get(data_start..data_start + entry.compressed_size as usize)
            .ok_or(ZipError::Truncated)?;
        match entry.method {
            Method::Stored => out.extend_from_slice(comp),
            Method::Deflate => inflate_into(comp, entry.uncompressed_size as usize, out)?,
        }
        if out.len() != entry.uncompressed_size as usize {
            return Err(ZipError::SizeMismatch {
                expected: entry.uncompressed_size,
                actual: out.len(),
            });
        }
        let actual = crc32(out);
        if actual != entry.crc32 {
            return Err(ZipError::CrcMismatch {
                expected: entry.crc32,
                actual,
            });
        }
        Ok(())
    }
}

struct PendingEntry {
    name: String,
    method: Method,
    crc32: u32,
    compressed: Vec<u8>,
    uncompressed_size: u32,
    local_header_offset: u32,
}

/// Incremental ZIP writer.
///
/// ```
/// use p2pmal_archive::zip::{ZipWriter, Method};
/// let mut w = ZipWriter::new();
/// w.add("readme.txt", b"hi", Method::Stored);
/// let archive = w.finish();
/// assert!(archive.starts_with(&[0x50, 0x4b, 0x03, 0x04]));
/// ```
pub struct ZipWriter {
    out: Vec<u8>,
    entries: Vec<PendingEntry>,
}

impl Default for ZipWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ZipWriter {
    pub fn new() -> Self {
        ZipWriter {
            out: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Appends a member. With [`Method::Deflate`] the data is compressed but
    /// falls back to stored if compression would expand it, mirroring what
    /// real archivers do.
    pub fn add(&mut self, name: &str, data: &[u8], method: Method) {
        let crc = crc32(data);
        let (method, compressed) = match method {
            Method::Stored => (Method::Stored, data.to_vec()),
            Method::Deflate => {
                let comp = deflate(data);
                if comp.len() >= data.len() && !data.is_empty() {
                    (Method::Stored, data.to_vec())
                } else {
                    (Method::Deflate, comp)
                }
            }
        };
        let offset = self.out.len() as u32;
        // Local file header.
        self.out.extend_from_slice(&LOCAL_SIG.to_le_bytes());
        self.out.extend_from_slice(&20u16.to_le_bytes()); // version needed
        self.out.extend_from_slice(&0u16.to_le_bytes()); // flags
        self.out.extend_from_slice(&method.id().to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // mod time
        self.out.extend_from_slice(&0u16.to_le_bytes()); // mod date
        self.out.extend_from_slice(&crc.to_le_bytes());
        self.out
            .extend_from_slice(&(compressed.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&(name.len() as u16).to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // extra len
        self.out.extend_from_slice(name.as_bytes());
        self.out.extend_from_slice(&compressed);
        self.entries.push(PendingEntry {
            name: name.to_string(),
            method,
            crc32: crc,
            compressed,
            uncompressed_size: data.len() as u32,
            local_header_offset: offset,
        });
    }

    /// Writes the central directory and EOCD, returning the archive bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let cd_offset = self.out.len() as u32;
        for e in &self.entries {
            self.out.extend_from_slice(&CENTRAL_SIG.to_le_bytes());
            self.out.extend_from_slice(&20u16.to_le_bytes()); // version made by
            self.out.extend_from_slice(&20u16.to_le_bytes()); // version needed
            self.out.extend_from_slice(&0u16.to_le_bytes()); // flags
            self.out.extend_from_slice(&e.method.id().to_le_bytes());
            self.out.extend_from_slice(&0u16.to_le_bytes()); // time
            self.out.extend_from_slice(&0u16.to_le_bytes()); // date
            self.out.extend_from_slice(&e.crc32.to_le_bytes());
            self.out
                .extend_from_slice(&(e.compressed.len() as u32).to_le_bytes());
            self.out
                .extend_from_slice(&e.uncompressed_size.to_le_bytes());
            self.out
                .extend_from_slice(&(e.name.len() as u16).to_le_bytes());
            self.out.extend_from_slice(&0u16.to_le_bytes()); // extra
            self.out.extend_from_slice(&0u16.to_le_bytes()); // comment
            self.out.extend_from_slice(&0u16.to_le_bytes()); // disk number
            self.out.extend_from_slice(&0u16.to_le_bytes()); // internal attrs
            self.out.extend_from_slice(&0u32.to_le_bytes()); // external attrs
            self.out
                .extend_from_slice(&e.local_header_offset.to_le_bytes());
            self.out.extend_from_slice(e.name.as_bytes());
        }
        let cd_size = self.out.len() as u32 - cd_offset;
        let n = self.entries.len() as u16;
        self.out.extend_from_slice(&EOCD_SIG.to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // disk number
        self.out.extend_from_slice(&0u16.to_le_bytes()); // cd start disk
        self.out.extend_from_slice(&n.to_le_bytes());
        self.out.extend_from_slice(&n.to_le_bytes());
        self.out.extend_from_slice(&cd_size.to_le_bytes());
        self.out.extend_from_slice(&cd_offset.to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // comment len
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_stored_and_deflate() {
        let mut w = ZipWriter::new();
        w.add("a.txt", b"alpha alpha alpha alpha", Method::Deflate);
        w.add("b.bin", &[0u8, 1, 2, 3, 4, 5], Method::Stored);
        w.add("empty", b"", Method::Deflate);
        let bytes = w.finish();
        let a = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.entries()[0].name, "a.txt");
        assert_eq!(a.read(0).unwrap(), b"alpha alpha alpha alpha");
        assert_eq!(a.read(1).unwrap(), &[0u8, 1, 2, 3, 4, 5]);
        assert_eq!(a.read(2).unwrap(), b"");
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut data = vec![0u8; 1000];
        rng.fill_bytes(&mut data);
        let mut w = ZipWriter::new();
        w.add("r.bin", &data, Method::Deflate);
        let bytes = w.finish();
        let a = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(a.entries()[0].method, Method::Stored);
        assert_eq!(a.read(0).unwrap(), data);
    }

    #[test]
    fn empty_archive() {
        let bytes = ZipWriter::new().finish();
        let a = ZipArchive::parse(&bytes).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut w = ZipWriter::new();
        w.add("x", b"payload payload payload", Method::Stored);
        let mut bytes = w.finish();
        // Flip a byte inside the stored payload (after the 30+1 byte header).
        bytes[35] ^= 0xFF;
        let a = ZipArchive::parse(&bytes).unwrap();
        assert!(matches!(a.read(0), Err(ZipError::CrcMismatch { .. })));
    }

    #[test]
    fn missing_eocd_rejected() {
        assert_eq!(
            ZipArchive::parse(b"PK\x03\x04not a real zip").err(),
            Some(ZipError::MissingEocd)
        );
        assert_eq!(ZipArchive::parse(b"").err(), Some(ZipError::MissingEocd));
    }

    #[test]
    fn unsupported_method_rejected() {
        let mut w = ZipWriter::new();
        w.add("x", b"data", Method::Stored);
        let mut bytes = w.finish();
        // Patch the central directory method field (offset cd+10) to 99.
        let cd = bytes.len() - 22 - (46 + 1); // EOCD is 22, one CD entry with 1-char name
        bytes[cd + 10] = 99;
        assert_eq!(
            ZipArchive::parse(&bytes).err(),
            Some(ZipError::UnsupportedMethod(99))
        );
    }

    #[test]
    fn entry_size_limit_enforced() {
        let mut w = ZipWriter::new();
        w.add("big", &vec![b'a'; 4096], Method::Deflate);
        let bytes = w.finish();
        let a = ZipArchive::parse_with_limit(&bytes, 100).unwrap();
        assert!(matches!(a.read(0), Err(ZipError::EntryTooLarge(4096))));
    }

    #[test]
    fn read_out_of_range() {
        let bytes = ZipWriter::new().finish();
        let a = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(a.read(0).err(), Some(ZipError::NoSuchEntry(0)));
    }

    #[test]
    fn truncation_never_panics() {
        let mut w = ZipWriter::new();
        w.add(
            "file.exe",
            b"some content that is long enough",
            Method::Deflate,
        );
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            if let Ok(a) = ZipArchive::parse(&bytes[..cut]) {
                for i in 0..a.len() {
                    let _ = a.read(i);
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            files in proptest::collection::vec(
                ("[a-z]{1,12}\\.(exe|zip|txt)", proptest::collection::vec(any::<u8>(), 0..512)),
                1..8
            )
        ) {
            let mut w = ZipWriter::new();
            for (name, data) in &files {
                w.add(name, data, Method::Deflate);
            }
            let bytes = w.finish();
            let a = ZipArchive::parse(&bytes).unwrap();
            prop_assert_eq!(a.len(), files.len());
            for (i, (name, data)) in files.iter().enumerate() {
                prop_assert_eq!(&a.entries()[i].name, name);
                prop_assert_eq!(&a.read(i).unwrap(), data);
            }
        }

        #[test]
        fn prop_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            if let Ok(a) = ZipArchive::parse(&data) {
                for i in 0..a.len() {
                    let _ = a.read(i);
                }
            }
        }
    }
}
