//! A complete DEFLATE (RFC 1951) decompressor.
//!
//! Supports all three block types (stored, fixed-Huffman, dynamic-Huffman)
//! and decodes with the counts/symbols canonical-Huffman technique used by
//! zlib's reference `puff` implementation: simple, allocation-light and easy
//! to audit.
//!
//! Because the scanner feeds this decoder with *untrusted bytes downloaded
//! from P2P peers*, every failure mode is a typed error — malformed input
//! must never panic — and the caller supplies an output ceiling so a
//! crafted "zip bomb" cannot exhaust memory.

/// Errors produced while inflating untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InflateError {
    /// Ran out of input bits mid-stream.
    UnexpectedEof,
    /// Reserved block type 3.
    InvalidBlockType,
    /// Stored block LEN/NLEN complement check failed.
    StoredLengthMismatch,
    /// A Huffman code set was over- or under-subscribed.
    InvalidHuffmanTable,
    /// Encountered a code that is unused in the block's tables.
    InvalidSymbol,
    /// A match distance points before the start of output.
    DistanceTooFar,
    /// Output would exceed the caller's ceiling (zip-bomb guard).
    OutputLimitExceeded,
    /// Length/distance symbol outside the valid RFC 1951 range.
    InvalidLengthOrDistance,
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of deflate stream",
            InflateError::InvalidBlockType => "reserved deflate block type",
            InflateError::StoredLengthMismatch => "stored block length complement mismatch",
            InflateError::InvalidHuffmanTable => "invalid huffman code lengths",
            InflateError::InvalidSymbol => "invalid huffman symbol",
            InflateError::DistanceTooFar => "match distance exceeds output",
            InflateError::OutputLimitExceeded => "output limit exceeded",
            InflateError::InvalidLengthOrDistance => "invalid length/distance symbol",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

/// LSB-first bit reader over a byte slice, refilled a 64-bit word at a time.
///
/// Invariant: bits of `bit_buf` at positions `>= bit_count` are zero, and
/// `bit_count <= 63`, so a refill can always splice new bytes on top.
struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte *not yet* loaded into `bit_buf`.
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    /// Tops up `bit_buf` from the input. The fast path reads one unaligned
    /// 64-bit word and splices in as many whole bytes as fit below bit 64;
    /// the tail of the stream falls back to byte-at-a-time.
    #[inline]
    fn refill(&mut self) {
        if self.pos + 8 <= self.data.len() {
            let w = u64::from_le_bytes(
                self.data[self.pos..self.pos + 8]
                    .try_into()
                    .expect("8-byte window"),
            );
            let take = (63 - self.bit_count) >> 3; // whole bytes that fit: 0..=7
            self.bit_buf |= (w & ((1u64 << (take * 8)) - 1)) << self.bit_count;
            self.bit_count += take * 8;
            self.pos += take as usize;
        } else {
            while self.bit_count <= 56 && self.pos < self.data.len() {
                self.bit_buf |= (self.data[self.pos] as u64) << self.bit_count;
                self.pos += 1;
                self.bit_count += 8;
            }
        }
    }

    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        debug_assert!(n <= 24);
        if self.bit_count < n {
            self.refill();
            if self.bit_count < n {
                return Err(InflateError::UnexpectedEof);
            }
        }
        let v = (self.bit_buf & ((1u64 << n) - 1)) as u32;
        self.bit_buf >>= n;
        self.bit_count -= n;
        Ok(v)
    }

    fn bit(&mut self) -> Result<u32, InflateError> {
        self.bits(1)
    }

    /// Realigns on a byte boundary (stored blocks): whole buffered bytes are
    /// returned to the stream, the remainder bits of the current partially
    /// consumed byte are discarded.
    fn align(&mut self) {
        self.pos -= (self.bit_count >> 3) as usize;
        self.bit_buf = 0;
        self.bit_count = 0;
    }

    /// Reads `n` raw bytes. Callers must `align()` first so `pos` reflects
    /// the true stream position.
    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], InflateError> {
        debug_assert_eq!(self.bit_count, 0, "take_bytes requires a prior align()");
        if self.pos + n > self.data.len() {
            return Err(InflateError::UnexpectedEof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

const MAX_BITS: usize = 15;

/// Canonical Huffman decoding tables: `count[l]` codes of length `l`, plus
/// symbols ordered by (length, symbol).
struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds tables from per-symbol code lengths (0 = unused).
    fn new(lengths: &[u8]) -> Result<Self, InflateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &l in lengths {
            if l as usize > MAX_BITS {
                return Err(InflateError::InvalidHuffmanTable);
            }
            count[l as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            // No codes at all: callers treat this as an always-failing table.
            return Ok(Huffman {
                count,
                symbol: Vec::new(),
            });
        }
        // Check for an over-subscribed or incomplete set of codes.
        let mut left: i32 = 1;
        for &c in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= c as i32;
            if left < 0 {
                return Err(InflateError::InvalidHuffmanTable);
            }
        }
        // Incomplete codes are tolerated only for the degenerate one-code
        // case (RFC permits a single distance code of length 1); stricter
        // callers can reject via `is_complete`.
        let mut offs = [0u16; MAX_BITS + 1];
        for l in 1..MAX_BITS {
            offs[l + 1] = offs[l] + count[l];
        }
        let mut symbol = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                symbol[offs[l as usize] as usize] = sym as u16;
                offs[l as usize] += 1;
            }
        }
        symbol.truncate(lengths.iter().filter(|&&l| l != 0).count());
        Ok(Huffman { count, symbol })
    }

    /// Decodes one symbol, reading bits MSB-of-code-first per RFC 1951.
    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, InflateError> {
        if r.bit_count < MAX_BITS as u32 {
            r.refill();
        }
        if r.bit_count >= MAX_BITS as u32 {
            // Fast path: every bit a 15-bit-max code could need is already
            // buffered, so walk local copies with no per-bit EOF checks.
            let mut code: i32 = 0;
            let mut first: i32 = 0;
            let mut index: i32 = 0;
            let mut buf = r.bit_buf;
            let mut used = 0u32;
            for len in 1..=MAX_BITS {
                code |= (buf & 1) as i32;
                buf >>= 1;
                used += 1;
                let count = self.count[len] as i32;
                if code - count < first {
                    r.bit_buf = buf;
                    r.bit_count -= used;
                    let sym = self
                        .symbol
                        .get((index + (code - first)) as usize)
                        .ok_or(InflateError::InvalidSymbol)?;
                    return Ok(*sym);
                }
                index += count;
                first += count;
                first <<= 1;
                code <<= 1;
            }
            return Err(InflateError::InvalidSymbol);
        }
        // Slow path: fewer than MAX_BITS left in the whole stream.
        let mut code: i32 = 0;
        let mut first: i32 = 0;
        let mut index: i32 = 0;
        for len in 1..=MAX_BITS {
            code |= r.bit()? as i32;
            let count = self.count[len] as i32;
            if code - count < first {
                let sym = self
                    .symbol
                    .get((index + (code - first)) as usize)
                    .ok_or(InflateError::InvalidSymbol)?;
                return Ok(*sym);
            }
            index += count;
            first += count;
            first <<= 1;
            code <<= 1;
        }
        Err(InflateError::InvalidSymbol)
    }
}

// RFC 1951 section 3.2.5 length/distance tables.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Code-length code order, RFC 1951 section 3.2.7.
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn fixed_tables() -> (Huffman, Huffman) {
    let mut lit_lengths = [0u8; 288];
    for (i, l) in lit_lengths.iter_mut().enumerate() {
        *l = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u8; 30];
    (
        Huffman::new(&lit_lengths).expect("fixed literal table is valid"),
        Huffman::new(&dist_lengths).expect("fixed distance table is valid"),
    )
}

/// Decompresses a raw DEFLATE stream.
///
/// `max_out` caps the decompressed size; exceeding it returns
/// [`InflateError::OutputLimitExceeded`] rather than allocating further.
pub fn inflate(data: &[u8], max_out: usize) -> Result<Vec<u8>, InflateError> {
    let mut out: Vec<u8> = Vec::new();
    inflate_into(data, max_out, &mut out)?;
    Ok(out)
}

/// Like [`inflate`], but appends into a caller-supplied buffer so repeated
/// decompressions (archive traversal over a batch of downloads) reuse one
/// allocation instead of growing a fresh `Vec` per member. The buffer is
/// *not* cleared first; `max_out` caps the total buffer length.
pub fn inflate_into(data: &[u8], max_out: usize, out: &mut Vec<u8>) -> Result<(), InflateError> {
    let mut r = BitReader::new(data);
    loop {
        let bfinal = r.bit()?;
        let btype = r.bits(2)?;
        match btype {
            0 => {
                r.align();
                let len_bytes = r.take_bytes(4)?;
                let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]) as usize;
                let nlen = u16::from_le_bytes([len_bytes[2], len_bytes[3]]);
                if nlen != !(len as u16) {
                    return Err(InflateError::StoredLengthMismatch);
                }
                if out.len() + len > max_out {
                    return Err(InflateError::OutputLimitExceeded);
                }
                out.extend_from_slice(r.take_bytes(len)?);
            }
            1 => {
                let (lit, dist) = fixed_tables();
                inflate_block(&mut r, out, &lit, &dist, max_out)?;
            }
            2 => {
                let hlit = r.bits(5)? as usize + 257;
                let hdist = r.bits(5)? as usize + 1;
                let hclen = r.bits(4)? as usize + 4;
                if hlit > 286 || hdist > 30 {
                    return Err(InflateError::InvalidHuffmanTable);
                }
                let mut clen_lengths = [0u8; 19];
                for &idx in CLEN_ORDER.iter().take(hclen) {
                    clen_lengths[idx] = r.bits(3)? as u8;
                }
                let clen = Huffman::new(&clen_lengths)?;
                let mut lengths = vec![0u8; hlit + hdist];
                let mut i = 0;
                while i < lengths.len() {
                    let sym = clen.decode(&mut r)?;
                    match sym {
                        0..=15 => {
                            lengths[i] = sym as u8;
                            i += 1;
                        }
                        16 => {
                            if i == 0 {
                                return Err(InflateError::InvalidHuffmanTable);
                            }
                            let prev = lengths[i - 1];
                            let rep = 3 + r.bits(2)? as usize;
                            if i + rep > lengths.len() {
                                return Err(InflateError::InvalidHuffmanTable);
                            }
                            for _ in 0..rep {
                                lengths[i] = prev;
                                i += 1;
                            }
                        }
                        17 => {
                            let rep = 3 + r.bits(3)? as usize;
                            if i + rep > lengths.len() {
                                return Err(InflateError::InvalidHuffmanTable);
                            }
                            i += rep;
                        }
                        18 => {
                            let rep = 11 + r.bits(7)? as usize;
                            if i + rep > lengths.len() {
                                return Err(InflateError::InvalidHuffmanTable);
                            }
                            i += rep;
                        }
                        _ => return Err(InflateError::InvalidSymbol),
                    }
                }
                if lengths[256] == 0 {
                    // End-of-block must be encodable.
                    return Err(InflateError::InvalidHuffmanTable);
                }
                let lit = Huffman::new(&lengths[..hlit])?;
                let dist = Huffman::new(&lengths[hlit..])?;
                inflate_block(&mut r, out, &lit, &dist, max_out)?;
            }
            _ => return Err(InflateError::InvalidBlockType),
        }
        if bfinal == 1 {
            return Ok(());
        }
    }
}

fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Huffman,
    dist: &Huffman,
    max_out: usize,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() >= max_out {
                    return Err(InflateError::OutputLimitExceeded);
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let li = sym as usize - 257;
                let len = LENGTH_BASE[li] as usize + r.bits(LENGTH_EXTRA[li] as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::InvalidLengthOrDistance);
                }
                let d = DIST_BASE[dsym] as usize + r.bits(DIST_EXTRA[dsym] as u32)? as usize;
                if d > out.len() {
                    return Err(InflateError::DistanceTooFar);
                }
                if out.len() + len > max_out {
                    return Err(InflateError::OutputLimitExceeded);
                }
                let start = out.len() - d;
                if d >= len {
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping match (d < len is legal and common:
                    // run-length). The region from `start` is periodic with
                    // period `d`, so doubling windows replicate it correctly.
                    let mut remaining = len;
                    while remaining > 0 {
                        let window = (out.len() - start).min(remaining);
                        out.extend_from_within(start..start + window);
                        remaining -= window;
                    }
                }
            }
            _ => return Err(InflateError::InvalidLengthOrDistance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::deflate;

    #[test]
    fn stored_block_roundtrip_via_manual_bytes() {
        // BFINAL=1, BTYPE=00, aligned, LEN=5, NLEN=!5, "hello".
        let mut raw = vec![0b0000_0001, 5, 0, 0xFA, 0xFF];
        raw.extend_from_slice(b"hello");
        assert_eq!(inflate(&raw, 1024).unwrap(), b"hello");
    }

    #[test]
    fn stored_block_bad_nlen_rejected() {
        let mut raw = vec![0b0000_0001, 5, 0, 0xFB, 0xFF];
        raw.extend_from_slice(b"hello");
        assert_eq!(inflate(&raw, 1024), Err(InflateError::StoredLengthMismatch));
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(inflate(&[], 1024), Err(InflateError::UnexpectedEof));
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        assert_eq!(
            inflate(&[0b0000_0111], 1024),
            Err(InflateError::InvalidBlockType)
        );
    }

    #[test]
    fn output_limit_enforced() {
        let data = vec![b'x'; 4096];
        let comp = deflate(&data);
        assert_eq!(inflate(&comp, 100), Err(InflateError::OutputLimitExceeded));
        assert_eq!(inflate(&comp, 4096).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_error_not_panic() {
        let comp = deflate(b"some reasonably compressible data data data data");
        for cut in 0..comp.len() {
            let _ = inflate(&comp[..cut], 1 << 16); // must not panic
        }
    }

    #[test]
    fn overlapping_match_periods_roundtrip() {
        // Small-period runs force d < len matches, exercising the doubling
        // window copy. Periods 1..8 cover the window-growth edge cases.
        for period in 1usize..=8 {
            let unit: Vec<u8> = (0..period).map(|i| b'a' + i as u8).collect();
            let data: Vec<u8> = unit.iter().copied().cycle().take(5000).collect();
            let comp = deflate(&data);
            assert_eq!(inflate(&comp, data.len()).unwrap(), data, "period {period}");
        }
    }

    #[test]
    fn random_mixed_data_roundtrips() {
        use rand::{Rng, RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..50 {
            // Mix of compressible text runs and incompressible noise.
            let mut data = Vec::new();
            while data.len() < 4096 {
                if rng.gen_bool(0.5) {
                    let word = b"the quick brown fox ";
                    let reps = rng.gen_range(1..20);
                    for _ in 0..reps {
                        data.extend_from_slice(word);
                    }
                } else {
                    let mut noise = vec![0u8; rng.gen_range(1..200)];
                    rng.fill_bytes(&mut noise);
                    data.extend_from_slice(&noise);
                }
            }
            let comp = deflate(&data);
            assert_eq!(inflate(&comp, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn inflate_into_reuses_buffer_across_streams() {
        let a = b"first stream payload, repeated repeated repeated".to_vec();
        let b = b"second".to_vec();
        let mut buf = Vec::new();
        inflate_into(&deflate(&a), a.len(), &mut buf).unwrap();
        assert_eq!(buf, a);
        let cap = buf.capacity();
        buf.clear();
        inflate_into(&deflate(&b), b.len(), &mut buf).unwrap();
        assert_eq!(buf, b);
        assert_eq!(buf.capacity(), cap, "clear+reuse must not reallocate");
    }

    #[test]
    fn garbage_never_panics() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut buf = vec![0u8; 64];
            rng.fill_bytes(&mut buf);
            let _ = inflate(&buf, 1 << 16);
        }
    }
}
