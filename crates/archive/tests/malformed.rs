//! Malformed-input hardening: the inflate and zip decoders must reject
//! truncated streams, garbled Huffman blocks and length-lying headers with
//! an `Err` — never a panic, never an unbounded loop or allocation. The
//! fault layer delivers exactly these bytes to the scan pipeline, so this
//! is the contract that keeps a hostile network from crashing the study.

use p2pmal_archive::deflate::{deflate, deflate_stored};
use p2pmal_archive::inflate::inflate;
use p2pmal_archive::zip::{Method, ZipArchive, ZipWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mixed-entropy sample: compressible text plus pseudo-random tail, which
/// exercises both Huffman-coded and stored deflate paths.
fn sample_body(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if rng.gen_bool(0.7) {
            out.extend_from_slice(b"the quick brown fox jumps over the lazy dog ");
        } else {
            out.push(rng.gen());
        }
    }
    out.truncate(len);
    out
}

const MAX_OUT: usize = 1 << 20;

#[test]
fn truncated_deflate_stream_errors_never_panics() {
    let body = sample_body(4096, 1);
    let full = deflate(&body);
    assert_eq!(inflate(&full, MAX_OUT).unwrap(), body);
    // Every proper prefix loses the end-of-block symbol (or the stored
    // block's payload) and must error out.
    for cut in 0..full.len() {
        let r = inflate(&full[..cut], MAX_OUT);
        assert!(r.is_err(), "prefix of {cut}/{} bytes decoded", full.len());
    }
    // Same for the byte-aligned stored encoding.
    let stored = deflate_stored(&body);
    for cut in 0..stored.len() {
        assert!(inflate(&stored[..cut], MAX_OUT).is_err());
    }
}

#[test]
fn bit_flipped_deflate_never_panics_or_overruns() {
    let body = sample_body(8192, 2);
    let full = deflate(&body);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..2000 {
        let mut garbled = full.clone();
        // Flip 1-4 bits anywhere: header, Huffman tables, symbol stream.
        for _ in 0..rng.gen_range(1..=4) {
            let bit = rng.gen_range(0..garbled.len() * 8);
            garbled[bit / 8] ^= 1 << (bit % 8);
        }
        // Any outcome is fine except a panic, a hang, or output beyond the
        // ceiling: a flip can hit unused padding and decode cleanly.
        if let Ok(out) = inflate(&garbled, MAX_OUT) {
            assert!(out.len() <= MAX_OUT);
        }
    }
}

fn sample_zip(seed: u64) -> Vec<u8> {
    let mut w = ZipWriter::new();
    w.add("readme.txt", &sample_body(512, seed), Method::Deflate);
    w.add("payload.exe", &sample_body(3000, seed ^ 1), Method::Deflate);
    w.add("raw.bin", &sample_body(256, seed ^ 2), Method::Stored);
    w.finish()
}

/// Parse + read every entry, demanding an `Err` (not a panic) from any
/// stage; returns true when all entries decoded.
fn try_full_read(data: &[u8]) -> bool {
    match ZipArchive::parse(data) {
        Err(_) => false,
        Ok(zip) => (0..zip.len()).all(|i| zip.read(i).is_ok()),
    }
}

#[test]
fn truncated_zip_errors_never_panics() {
    let archive = sample_zip(4);
    assert!(try_full_read(&archive), "intact archive must read");
    // Chopping anywhere loses the EOCD record (it sits at the very end),
    // so parsing or reading must fail — gracefully.
    for cut in 0..archive.len() {
        assert!(
            !try_full_read(&archive[..cut]),
            "truncated archive ({cut}/{} bytes) read fully",
            archive.len()
        );
    }
}

#[test]
fn zip_with_length_lying_local_header_errors() {
    let archive = sample_zip(5);
    let zip = ZipArchive::parse(&archive).unwrap();
    let entry = zip.entries()[0].clone();
    let lho = entry.local_header_offset as usize;

    // Inflate the local header's compressed-size field (offset 18) so the
    // data region claims to run past the end of the buffer.
    let mut lying = archive.clone();
    lying[lho + 18..lho + 22].copy_from_slice(&u32::MAX.to_le_bytes());
    let parsed = ZipArchive::parse(&lying).expect("central directory intact");
    // The central directory still holds the honest size, so entry 0 reads
    // from whichever length the implementation trusts — it must either
    // succeed against the honest copy or error, never read out of bounds.
    let _ = parsed.read(0);

    // Now lie in the central directory itself: entry 0's compressed size
    // (offset 20 within its record) claims more bytes than the file holds.
    let mut pos = None;
    for off in 0..archive.len() - 4 {
        if archive[off..off + 4] == [0x50, 0x4b, 0x01, 0x02] {
            pos = Some(off);
            break;
        }
    }
    let pos = pos.expect("central directory record");
    let mut lying = archive.clone();
    lying[pos + 20..pos + 24].copy_from_slice(&0x7FFF_FFFFu32.to_le_bytes());
    let parsed = ZipArchive::parse(&lying).expect("structure still parses");
    assert!(
        parsed.read(0).is_err(),
        "compressed data past the buffer end must error"
    );

    // And an uncompressed size far beyond the per-entry ceiling must be
    // rejected before any allocation.
    let mut bomb = archive.clone();
    bomb[pos + 24..pos + 28].copy_from_slice(&u32::MAX.to_le_bytes());
    let parsed = ZipArchive::parse(&bomb).expect("structure still parses");
    assert!(parsed.read(0).is_err(), "zip-bomb sized entry must error");
}

#[test]
fn byte_flipped_zip_never_panics() {
    let archive = sample_zip(6);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..2000 {
        let mut garbled = archive.clone();
        for _ in 0..rng.gen_range(1..=3) {
            let i = rng.gen_range(0..garbled.len());
            garbled[i] = rng.gen();
        }
        // Must terminate without panicking; success is allowed (a flip in
        // an entry body is caught by CRC, one in a comment is harmless).
        let _ = try_full_read(&garbled);
    }
}
