//! Gnutella message GUIDs.
//!
//! Every descriptor carries a 16-byte GUID used for duplicate suppression
//! and reverse routing. Modern (post-0.4) servents mark their GUIDs the way
//! LimeWire did: byte 8 is `0xFF` ("new servent") and byte 15 is `0x00`
//! (reserved, must be zero).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A 16-byte Gnutella GUID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(pub [u8; 16]);

impl Guid {
    /// Generates a fresh GUID with LimeWire-style markers.
    pub fn random(rng: &mut StdRng) -> Self {
        let mut b = [0u8; 16];
        rng.fill(&mut b);
        b[8] = 0xFF;
        b[15] = 0x00;
        Guid(b)
    }

    /// Parses from a wire slice. Returns `None` unless exactly 16 bytes are
    /// available at the front.
    pub fn from_slice(data: &[u8]) -> Option<Self> {
        if data.len() < 16 {
            return None;
        }
        let mut b = [0u8; 16];
        b.copy_from_slice(&data[..16]);
        Some(Guid(b))
    }

    /// True when the GUID carries the modern-servent markers.
    pub fn is_modern(&self) -> bool {
        self.0[8] == 0xFF && self.0[15] == 0x00
    }

    /// Lower-case hex, as used in PUSH `GIV` lines.
    pub fn to_hex(&self) -> String {
        p2pmal_hashes::to_hex(&self.0)
    }

    /// Parses the 32-hex-digit form.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = p2pmal_hashes::from_hex(s)?;
        if bytes.len() != 16 {
            return None;
        }
        let mut b = [0u8; 16];
        b.copy_from_slice(&bytes);
        Some(Guid(b))
    }
}

/// GUIDs key the servent's open-addressed route tables
/// ([`p2pmal_netsim::FifoMap`]). The bytes are already uniformly random, so
/// folding the halves (with a rotate so byte-8/15 markers land on distinct
/// lanes) feeds the table's own finalizer plenty of entropy.
impl p2pmal_netsim::KeyHash for Guid {
    #[inline]
    fn key_hash(&self) -> u64 {
        let a = u64::from_le_bytes(self.0[..8].try_into().unwrap());
        let b = u64::from_le_bytes(self.0[8..].try_into().unwrap());
        (a ^ b.rotate_left(32)).key_hash()
    }
}

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_guids_carry_markers_and_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Guid::random(&mut rng);
        let b = Guid::random(&mut rng);
        assert!(a.is_modern());
        assert!(b.is_modern());
        assert_ne!(a, b);
    }

    #[test]
    fn hex_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Guid::random(&mut rng);
        assert_eq!(Guid::from_hex(&g.to_hex()), Some(g));
        assert_eq!(g.to_hex().len(), 32);
    }

    #[test]
    fn from_slice_requires_16_bytes() {
        assert!(Guid::from_slice(&[0u8; 15]).is_none());
        assert!(Guid::from_slice(&[0u8; 16]).is_some());
        // Extra bytes are fine; only the first 16 are taken.
        let g = Guid::from_slice(&[7u8; 20]).unwrap();
        assert_eq!(g.0, [7u8; 16]);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Guid::from_hex("xyz").is_none());
        assert!(Guid::from_hex("00ff").is_none());
    }
}
