//! A Gnutella 0.6 servent implementation — the substrate for the
//! reproduction's "LimeWire" measurements.
//!
//! The IMC 2006 study instrumented LimeWire against the live Gnutella
//! network. This crate provides the network side from scratch:
//!
//! * [`message`] — the 23-byte descriptor header and stream framing;
//! * [`payload`] — typed PING/PONG/QUERY/QUERYHIT/PUSH/BYE payloads;
//! * [`ggep`] — GGEP extension blocks;
//! * [`qrp`] — query-routing tables, the QRP hash, RESET/PATCH transfer;
//! * [`handshake`] — the 0.6 three-group HTTP-style handshake;
//! * [`http`] — HTTP/1.1 file transfer plus the `GIV` push handshake;
//! * [`servent`] — a complete node (ultrapeer or leaf) over
//!   [`p2pmal_netsim::App`], with query flooding, reverse-path hit and PUSH
//!   routing, QRP-filtered last-hop delivery, uploads and downloads.
//!
//! Everything is sans-IO and deterministic: protocol state machines consume
//! byte slices and emit byte vectors, so the same code runs under the
//! discrete-event simulator, over real TCP (`p2pmal_netsim::live`), and in
//! unit tests.
//!
//! # Example: wire-level query round trip
//!
//! ```
//! use p2pmal_gnutella::guid::Guid;
//! use p2pmal_gnutella::message::{encode_message, MessageReader, MsgType};
//! use p2pmal_gnutella::payload::Query;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let guid = Guid::random(&mut rng);
//! let mut wire = Vec::new();
//! encode_message(guid, MsgType::Query, 3, 0, &Query::keyword("free music").encode(), &mut wire);
//!
//! let mut reader = MessageReader::new();
//! reader.push(&wire);
//! let (header, payload) = reader.next_message().unwrap().unwrap();
//! assert_eq!(header.msg_type, MsgType::Query);
//! assert_eq!(Query::parse(&payload).unwrap().text, "free music");
//! ```

pub mod ggep;
pub mod guid;
pub mod handshake;
pub mod http;
pub mod message;
pub mod payload;
pub mod qrp;
pub mod servent;

pub use guid::Guid;
pub use message::{FrameError, Header, MessageReader, MsgType};
pub use payload::{Bye, HitResult, Ping, Pong, Push, Query, QueryHit};
pub use servent::{
    DownloadError, DownloadMethod, DownloadOutcome, DownloadRequest, Role, Servent, ServentConfig,
    ServentEvent, ServentStats, SharedWorld, ECHO_INDEX_BASE,
};
