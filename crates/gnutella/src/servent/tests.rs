//! End-to-end servent tests: real wire bytes over the discrete-event
//! simulator.

use super::*;
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, FamilyId, HostLibrary, Roster};
use p2pmal_netsim::{NodeId, NodeSpec, SimConfig, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world(seed: u64) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::generate(
        &CatalogConfig {
            titles: 150,
            ..Default::default()
        },
        &mut rng,
    );
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(Roster::limewire_2006()),
        Arc::new(ContentStore::new(seed)),
    )
}

/// A small overlay: `ups` ultrapeers meshed via bootstrap, plus the given
/// leaf libraries hanging off them. Returns (sim, up ids, leaf ids).
struct TestNet {
    sim: Simulator,
    ups: Vec<NodeId>,
    leaves: Vec<NodeId>,
    world: SharedWorld,
}

fn build_net(seed: u64, ups: usize, leaf_libs: Vec<(HostLibrary, bool)>) -> TestNet {
    let world = world(seed);
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let mut up_ids = Vec::new();
    let mut up_addrs = Vec::new();
    for _ in 0..ups {
        let cfg = ServentConfig::ultrapeer().with_bootstrap(up_addrs.clone());
        let servent = Servent::new(cfg, world.clone(), HostLibrary::new());
        let id = sim.spawn(NodeSpec::public().listen(6346), Box::new(servent));
        up_addrs.push(sim.node_addr(id));
        up_ids.push(id);
    }
    let mut leaf_ids = Vec::new();
    for (lib, nat) in leaf_libs {
        let cfg = ServentConfig::leaf().with_bootstrap(up_addrs.clone());
        let servent = Servent::new(cfg, world.clone(), lib);
        let spec = if nat {
            NodeSpec::nat()
        } else {
            NodeSpec::public().listen(6346)
        };
        let id = sim.spawn(spec, Box::new(servent));
        leaf_ids.push(id);
    }
    // Let the overlay converge.
    sim.run_until(SimTime::from_secs(60));
    TestNet {
        sim,
        ups: up_ids,
        leaves: leaf_ids,
        world,
    }
}

fn with_servent<R>(
    sim: &mut Simulator,
    node: NodeId,
    f: impl FnOnce(&mut Servent, &mut p2pmal_netsim::Ctx<'_>) -> R,
) -> R {
    sim.with_node(node, |app, ctx| {
        let s = app
            .as_any_mut()
            .expect("servent supports downcast")
            .downcast_mut::<Servent>()
            .expect("node is a Servent");
        f(s, ctx)
    })
    .expect("node alive")
}

/// A leaf that shares a benign title; a second (crawler-style) leaf
/// searches for it and gets a routed QUERYHIT back through the ultrapeer.
#[test]
fn query_flood_and_hit_routing() {
    let w = world(1);
    let mut lib = HostLibrary::new();
    lib.add_benign(w.catalog.item(0), 0);
    let kw = w.catalog.item(0).keywords.clone();
    let mut net = build_net(1, 2, vec![(lib, false)]);
    // Crawler leaf joins.
    let crawler = {
        let cfg = ServentConfig {
            collect_events: true,
            ..ServentConfig::leaf().with_bootstrap(vec![net.sim.node_addr(net.ups[0])])
        };
        let servent = Servent::new(cfg, net.world.clone(), HostLibrary::new());
        net.sim
            .spawn(NodeSpec::public().listen(6346), Box::new(servent))
    };
    net.sim.run_until(SimTime::from_secs(120));

    assert!(
        with_servent(&mut net.sim, crawler, |s, _| s.peer_count()) > 0,
        "crawler connected"
    );
    let query = kw.join(" ");
    with_servent(&mut net.sim, crawler, |s, ctx| s.search(ctx, &query));
    net.sim.run_until(SimTime::from_secs(180));

    let events = with_servent(&mut net.sim, crawler, |s, _| s.drain_events());
    let hits: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ServentEvent::QueryHit { hit, .. } => Some(hit.clone()),
            _ => None,
        })
        .collect();
    assert!(
        !hits.is_empty(),
        "expected a query hit, got events: {}",
        events.len()
    );
    let names: Vec<&str> = hits
        .iter()
        .flat_map(|h| h.results.iter().map(|r| r.name.as_str()))
        .collect();
    assert!(
        names.iter().any(|n| n.contains(&kw[0])),
        "hit should name the shared file: {names:?}"
    );
    // The sharer is public, so no push flag.
    assert!(!hits[0].flags.needs_push());
}

/// An echo-worm leaf answers a query for an arbitrary string with
/// `<query>.exe`, and the payload downloads and convicts.
#[test]
fn echo_worm_answers_everything_and_download_scans_dirty() {
    let w = world(2);
    let mut lib = HostLibrary::new();
    let mut rng = StdRng::seed_from_u64(7);
    lib.infect(w.roster.get(FamilyId(0)), &w.catalog, &mut rng);

    let mut net = build_net(2, 1, vec![(lib, false)]);
    let crawler = {
        let cfg = ServentConfig {
            collect_events: true,
            ..ServentConfig::leaf().with_bootstrap(vec![net.sim.node_addr(net.ups[0])])
        };
        net.sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, net.world.clone(), HostLibrary::new())),
        )
    };
    net.sim.run_until(SimTime::from_secs(120));

    with_servent(&mut net.sim, crawler, |s, ctx| {
        s.search(ctx, "definitely nonexistent words")
    });
    net.sim.run_until(SimTime::from_secs(200));
    let events = with_servent(&mut net.sim, crawler, |s, _| s.drain_events());
    let hit = events
        .iter()
        .find_map(|e| match e {
            ServentEvent::QueryHit { hit, .. } => Some(hit.clone()),
            _ => None,
        })
        .expect("echo worm must answer");
    let res = &hit.results[0];
    assert_eq!(res.name, "definitely_nonexistent_words.exe");
    assert_eq!(res.size as u64, w.roster.get(FamilyId(0)).sizes[0]);
    assert!(res.index >= ECHO_INDEX_BASE);

    // Download it directly and scan.
    let addr = HostAddr::new(hit.ip, hit.port);
    with_servent(&mut net.sim, crawler, |s, ctx| {
        s.begin_download(
            ctx,
            DownloadRequest {
                addr,
                index: res.index,
                name: res.name.clone(),
                servent_guid: hit.servent_guid,
                method: DownloadMethod::Direct,
            },
        )
    });
    net.sim.run_until(SimTime::from_secs(400));
    let events = with_servent(&mut net.sim, crawler, |s, _| s.drain_events());
    let body = events
        .iter()
        .find_map(|e| match e {
            ServentEvent::DownloadDone(d) => Some(d.result.clone().expect("download ok")),
            _ => None,
        })
        .expect("download completed");
    assert_eq!(body.len() as u64, w.roster.get(FamilyId(0)).sizes[0]);
    let scanner = p2pmal_scanner::Scanner::new(w.roster.signature_db().unwrap().build().unwrap());
    let verdict = scanner.scan(&res.name, &body);
    assert_eq!(
        verdict.primary(),
        Some(w.roster.get(FamilyId(0)).name.as_str())
    );
}

/// A NATed infected leaf advertises its private address; direct dialing
/// fails, but a routed PUSH + GIV completes the transfer.
#[test]
fn nat_leaf_requires_push_and_giv_transfer_works() {
    let w = world(3);
    let mut lib = HostLibrary::new();
    let mut rng = StdRng::seed_from_u64(8);
    lib.infect(w.roster.get(FamilyId(0)), &w.catalog, &mut rng);

    let mut net = build_net(3, 1, vec![(lib, true)]); // NATed sharer
    let crawler = {
        let cfg = ServentConfig {
            collect_events: true,
            ..ServentConfig::leaf().with_bootstrap(vec![net.sim.node_addr(net.ups[0])])
        };
        net.sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, net.world.clone(), HostLibrary::new())),
        )
    };
    net.sim.run_until(SimTime::from_secs(120));

    with_servent(&mut net.sim, crawler, |s, ctx| {
        s.search(ctx, "any random thing")
    });
    net.sim.run_until(SimTime::from_secs(200));
    let events = with_servent(&mut net.sim, crawler, |s, _| s.drain_events());
    let hit = events
        .iter()
        .find_map(|e| match e {
            ServentEvent::QueryHit { hit, .. } => Some(hit.clone()),
            _ => None,
        })
        .expect("worm answered");
    // The paper's artifact: the advertised address is RFC 1918.
    assert!(
        HostAddr::new(hit.ip, hit.port).is_private(),
        "advertised {}",
        hit.ip
    );
    assert!(hit.flags.needs_push());

    // Direct download fails (private address unroutable)...
    let res = hit.results[0].clone();
    with_servent(&mut net.sim, crawler, |s, ctx| {
        s.begin_download(
            ctx,
            DownloadRequest {
                addr: HostAddr::new(hit.ip, hit.port),
                index: res.index,
                name: res.name.clone(),
                servent_guid: hit.servent_guid,
                method: DownloadMethod::Direct,
            },
        )
    });
    net.sim.run_until(SimTime::from_secs(400));
    let events = with_servent(&mut net.sim, crawler, |s, _| s.drain_events());
    let direct = events
        .iter()
        .find_map(|e| match e {
            ServentEvent::DownloadDone(d) => Some(d.result.clone()),
            _ => None,
        })
        .expect("direct attempt resolved");
    assert!(direct.is_err(), "dialing a private address must fail");

    // ...but PUSH succeeds.
    with_servent(&mut net.sim, crawler, |s, ctx| {
        s.begin_download(
            ctx,
            DownloadRequest {
                addr: HostAddr::new(hit.ip, hit.port),
                index: res.index,
                name: res.name.clone(),
                servent_guid: hit.servent_guid,
                method: DownloadMethod::Push,
            },
        )
    });
    net.sim.run_until(SimTime::from_secs(700));
    let events = with_servent(&mut net.sim, crawler, |s, _| s.drain_events());
    let pushed = events
        .iter()
        .find_map(|e| match e {
            ServentEvent::DownloadDone(d) => Some(d.result.clone()),
            _ => None,
        })
        .expect("push attempt resolved");
    let body = pushed.expect("push download succeeds");
    assert_eq!(body.len() as u64, w.roster.get(FamilyId(0)).sizes[0]);
}

/// QRP keeps non-matching queries away from clean leaves but echo worms
/// saturate their tables and receive everything.
#[test]
fn qrp_suppresses_clean_leaves_but_not_worms() {
    let w = world(4);
    let mut clean = HostLibrary::new();
    clean.add_benign(w.catalog.item(3), 0);
    let mut dirty = HostLibrary::new();
    let mut rng = StdRng::seed_from_u64(9);
    dirty.infect(w.roster.get(FamilyId(0)), &w.catalog, &mut rng);

    let mut net = build_net(4, 1, vec![(clean, false), (dirty, false)]);
    let crawler = {
        let cfg = ServentConfig {
            collect_events: true,
            ..ServentConfig::leaf().with_bootstrap(vec![net.sim.node_addr(net.ups[0])])
        };
        net.sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, net.world.clone(), HostLibrary::new())),
        )
    };
    net.sim.run_until(SimTime::from_secs(120));
    for i in 0..10 {
        with_servent(&mut net.sim, crawler, |s, ctx| {
            s.search(ctx, &format!("unmatchable terms {i}"))
        });
    }
    net.sim.run_until(SimTime::from_secs(400));

    let up_stats = with_servent(&mut net.sim, net.ups[0], |s, _| s.stats());
    assert!(
        up_stats.qrp_last_hop_suppressed > 0,
        "ultrapeer should suppress last-hop deliveries to the clean leaf"
    );
    // The clean leaf answered nothing; the worm answered every query.
    let clean_stats = with_servent(&mut net.sim, net.leaves[0], |s, _| s.stats());
    let dirty_stats = with_servent(&mut net.sim, net.leaves[1], |s, _| s.stats());
    assert_eq!(clean_stats.queries_answered, 0);
    assert!(
        dirty_stats.queries_answered >= 10,
        "worm answered {}",
        dirty_stats.queries_answered
    );
}

/// Ultrapeers hand out their host cache on leaf-slot exhaustion, and the
/// rejected leaf retries elsewhere.
#[test]
fn leaf_slot_rejection_redirects_to_other_ultrapeers() {
    let w = world(5);
    let mut sim = Simulator::new(SimConfig::default(), 5);
    // One full ultrapeer (0 slots) that knows a second, open ultrapeer.
    let open_up = {
        let cfg = ServentConfig::ultrapeer();
        sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), HostLibrary::new())),
        )
    };
    let open_addr = sim.node_addr(open_up);
    let full_up = {
        let mut cfg = ServentConfig::ultrapeer().with_bootstrap(vec![open_addr]);
        cfg.max_leaf_slots = 0;
        sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), HostLibrary::new())),
        )
    };
    let full_addr = sim.node_addr(full_up);
    sim.run_until(SimTime::from_secs(60));

    let leaf = {
        let cfg = ServentConfig::leaf().with_bootstrap(vec![full_addr]);
        sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w, HostLibrary::new())),
        )
    };
    sim.run_until(SimTime::from_secs(300));
    let peers = sim
        .with_node(leaf, |app, _| {
            app.as_any_mut()
                .unwrap()
                .downcast_mut::<Servent>()
                .unwrap()
                .peer_count()
        })
        .unwrap();
    assert!(
        peers >= 1,
        "leaf found the open ultrapeer via X-Try-Ultrapeers"
    );
}
