//! GGEP — the Gnutella Generic Extension Protocol.
//!
//! GGEP blocks ride in the extension areas of PING/PONG/QUERY/QUERYHIT
//! messages. A block is the magic byte `0xC3` followed by one or more
//! extensions:
//!
//! ```text
//! flags: 1 byte   bit7 = last extension, bit6 = COBS encoded,
//!                 bit5 = deflate compressed, bits0-3 = id length (1-15)
//! id:    1-15 bytes of ASCII
//! len:   1-3 bytes; each carries 6 payload bits; 0b10xxxxxx = more length
//!        bytes follow, 0b01xxxxxx = final length byte
//! data:  `len` bytes
//! ```
//!
//! COBS and per-extension deflate were rarely used by 2006 servents and are
//! rejected here as unsupported (never misparsed as data).

use std::fmt;

/// The GGEP block magic.
pub const GGEP_MAGIC: u8 = 0xC3;

/// Maximum bytes a single extension may carry (3 length bytes × 6 bits).
pub const MAX_EXT_LEN: usize = 0x3FFFF;

/// One parsed GGEP extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    pub id: String,
    pub data: Vec<u8>,
}

/// GGEP parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GgepError {
    NoMagic,
    Truncated,
    BadIdLength(u8),
    NonAsciiId,
    BadLength,
    UnsupportedEncoding(&'static str),
    TooLong(usize),
}

impl fmt::Display for GgepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GgepError::NoMagic => write!(f, "missing GGEP magic"),
            GgepError::Truncated => write!(f, "truncated GGEP block"),
            GgepError::BadIdLength(n) => write!(f, "bad GGEP id length {n}"),
            GgepError::NonAsciiId => write!(f, "non-ASCII GGEP id"),
            GgepError::BadLength => write!(f, "malformed GGEP length"),
            GgepError::UnsupportedEncoding(e) => write!(f, "unsupported GGEP encoding: {e}"),
            GgepError::TooLong(n) => write!(f, "GGEP extension of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for GgepError {}

/// Encodes `extensions` into a GGEP block. Panics if an id is empty, longer
/// than 15 bytes, or non-ASCII, or if data exceeds [`MAX_EXT_LEN`] — those
/// are caller bugs, not data-dependent conditions.
pub fn encode(extensions: &[Extension]) -> Vec<u8> {
    assert!(
        !extensions.is_empty(),
        "GGEP block needs at least one extension"
    );
    let mut out = vec![GGEP_MAGIC];
    for (i, ext) in extensions.iter().enumerate() {
        let id = ext.id.as_bytes();
        assert!(
            !id.is_empty() && id.len() <= 15,
            "GGEP id length {}",
            id.len()
        );
        assert!(
            id.iter().all(|b| b.is_ascii() && *b != 0),
            "GGEP id must be ASCII"
        );
        assert!(ext.data.len() <= MAX_EXT_LEN, "GGEP data too long");
        let last = i + 1 == extensions.len();
        let mut flags = id.len() as u8;
        if last {
            flags |= 0x80;
        }
        out.push(flags);
        out.extend_from_slice(id);
        encode_len(ext.data.len(), &mut out);
        out.extend_from_slice(&ext.data);
    }
    out
}

/// Encodes a length in 1-3 six-bit groups, most-significant first.
fn encode_len(len: usize, out: &mut Vec<u8>) {
    debug_assert!(len <= MAX_EXT_LEN);
    if len > 0xFFF {
        out.push(0x80 | ((len >> 12) & 0x3F) as u8);
    }
    if len > 0x3F {
        out.push(0x80 | ((len >> 6) & 0x3F) as u8);
    }
    out.push(0x40 | (len & 0x3F) as u8);
}

/// Parses a GGEP block from the front of `data`. Returns the extensions and
/// the number of bytes consumed.
pub fn parse(data: &[u8]) -> Result<(Vec<Extension>, usize), GgepError> {
    if data.first() != Some(&GGEP_MAGIC) {
        return Err(GgepError::NoMagic);
    }
    let mut pos = 1;
    let mut exts = Vec::new();
    loop {
        let flags = *data.get(pos).ok_or(GgepError::Truncated)?;
        pos += 1;
        if flags & 0x40 != 0 {
            return Err(GgepError::UnsupportedEncoding("COBS"));
        }
        if flags & 0x20 != 0 {
            return Err(GgepError::UnsupportedEncoding("deflate"));
        }
        let id_len = (flags & 0x0F) as usize;
        if id_len == 0 {
            return Err(GgepError::BadIdLength(0));
        }
        let id_bytes = data.get(pos..pos + id_len).ok_or(GgepError::Truncated)?;
        if !id_bytes.iter().all(|b| b.is_ascii() && *b != 0) {
            return Err(GgepError::NonAsciiId);
        }
        let id = String::from_utf8(id_bytes.to_vec()).expect("checked ASCII");
        pos += id_len;

        let mut len = 0usize;
        let mut done = false;
        for _ in 0..3 {
            let b = *data.get(pos).ok_or(GgepError::Truncated)?;
            pos += 1;
            len = (len << 6) | (b & 0x3F) as usize;
            match b & 0xC0 {
                0x80 => continue,
                0x40 => {
                    done = true;
                    break;
                }
                _ => return Err(GgepError::BadLength),
            }
        }
        if !done {
            return Err(GgepError::BadLength);
        }
        if len > MAX_EXT_LEN {
            return Err(GgepError::TooLong(len));
        }
        let body = data.get(pos..pos + len).ok_or(GgepError::Truncated)?;
        pos += len;
        exts.push(Extension {
            id,
            data: body.to_vec(),
        });
        if flags & 0x80 != 0 {
            return Ok((exts, pos));
        }
    }
}

/// Convenience: find an extension by id.
pub fn find<'a>(exts: &'a [Extension], id: &str) -> Option<&'a [u8]> {
    exts.iter().find(|e| e.id == id).map(|e| e.data.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(id: &str, data: &[u8]) -> Extension {
        Extension {
            id: id.to_string(),
            data: data.to_vec(),
        }
    }

    #[test]
    fn single_extension_roundtrip() {
        let block = encode(&[ext("DU", &[0x3C, 0x00])]);
        assert_eq!(block[0], GGEP_MAGIC);
        let (exts, used) = parse(&block).unwrap();
        assert_eq!(used, block.len());
        assert_eq!(exts, vec![ext("DU", &[0x3C, 0x00])]);
    }

    #[test]
    fn multiple_extensions_roundtrip_and_find() {
        let input = vec![ext("VC", b"LIME"), ext("CT", &[1, 2, 3, 4]), ext("UP", &[])];
        let block = encode(&input);
        let (exts, _) = parse(&block).unwrap();
        assert_eq!(exts, input);
        assert_eq!(find(&exts, "VC"), Some(&b"LIME"[..]));
        assert_eq!(find(&exts, "CT"), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(find(&exts, "UP"), Some(&[][..]));
        assert_eq!(find(&exts, "XX"), None);
    }

    #[test]
    fn length_encoding_boundaries() {
        for n in [0usize, 1, 0x3F, 0x40, 0xFFF, 0x1000, MAX_EXT_LEN] {
            let data = vec![0xAB; n];
            let block = encode(&[ext("T", &data)]);
            let (exts, used) = parse(&block).unwrap();
            assert_eq!(used, block.len(), "len {n}");
            assert_eq!(exts[0].data.len(), n, "len {n}");
        }
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut block = encode(&[ext("A", b"x")]);
        let ggep_len = block.len();
        block.extend_from_slice(b"HUGE-urn-follows");
        let (_, used) = parse(&block).unwrap();
        assert_eq!(used, ggep_len);
    }

    #[test]
    fn rejects_missing_magic_and_truncation() {
        assert_eq!(parse(b""), Err(GgepError::NoMagic));
        assert_eq!(parse(b"\x00rest"), Err(GgepError::NoMagic));
        let block = encode(&[ext("AB", b"hello")]);
        for cut in 1..block.len() {
            let r = parse(&block[..cut]);
            assert!(r.is_err(), "cut {cut} parsed: {r:?}");
        }
    }

    #[test]
    fn rejects_unsupported_encodings() {
        // flags: last + COBS + idlen 1
        let raw = [GGEP_MAGIC, 0x80 | 0x40 | 0x01, b'A', 0x40];
        assert_eq!(parse(&raw), Err(GgepError::UnsupportedEncoding("COBS")));
        let raw = [GGEP_MAGIC, 0x80 | 0x20 | 0x01, b'A', 0x40];
        assert_eq!(parse(&raw), Err(GgepError::UnsupportedEncoding("deflate")));
    }

    #[test]
    fn rejects_bad_length_encoding() {
        // Length byte with neither continue nor final marker.
        let raw = [GGEP_MAGIC, 0x80 | 0x01, b'A', 0x00];
        assert_eq!(parse(&raw), Err(GgepError::BadLength));
        // Four length bytes (three "continue" markers then anything).
        let raw = [GGEP_MAGIC, 0x80 | 0x01, b'A', 0x81, 0x81, 0x81, 0x41];
        assert_eq!(parse(&raw), Err(GgepError::BadLength));
    }

    #[test]
    fn rejects_zero_id_length_and_non_ascii() {
        let raw = [GGEP_MAGIC, 0x80, 0x40];
        assert_eq!(parse(&raw), Err(GgepError::BadIdLength(0)));
        let raw = [GGEP_MAGIC, 0x80 | 0x01, 0xFF, 0x40];
        assert_eq!(parse(&raw), Err(GgepError::NonAsciiId));
    }
}
