//! Gnutella file transfer: HTTP/1.1 over the servent port, plus the `GIV`
//! push handshake.
//!
//! Downloads use plain HTTP against the responder's listening socket:
//!
//! ```text
//! GET /get/<index>/<filename> HTTP/1.1      (classic addressing)
//! GET /uri-res/N2R?urn:sha1:<base32> HTTP/1.1   (HUGE content addressing)
//! ```
//!
//! Firewalled responders can't be dialed, so the downloader routes a PUSH
//! descriptor back through the overlay; the responder then dials *out* and
//! opens the connection with a `GIV <index>:<guid-hex>/<filename>\n\n`
//! line, after which the downloader sends its GET over that connection.

use crate::guid::Guid;
use p2pmal_hashes::{base32_decode, Sha1Digest};
use std::fmt;

/// Size cap for request heads, mirroring servent hardening.
const MAX_HEAD: usize = 8 * 1024;

/// Transfer-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    BadRequestLine,
    BadHeader,
    BadTarget,
    BadStatusLine,
    MissingLength,
    HeadTooLong,
    BodyTooLong,
    BadGiv,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HttpError::BadRequestLine => "malformed request line",
            HttpError::BadHeader => "malformed header",
            HttpError::BadTarget => "unrecognized request target",
            HttpError::BadStatusLine => "malformed status line",
            HttpError::MissingLength => "response without Content-Length",
            HttpError::HeadTooLong => "head exceeds size limit",
            HttpError::BodyTooLong => "body exceeds declared length",
            HttpError::BadGiv => "malformed GIV line",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HttpError {}

/// What a download request addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestTarget {
    /// `/get/<index>/<filename>`
    ByIndex { index: u32, name: String },
    /// `/uri-res/N2R?urn:sha1:<base32>`
    ByUrn(Sha1Digest),
}

/// A parsed upload request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub target: RequestTarget,
    pub user_agent: String,
}

/// Minimal percent-encoding for filenames in request paths (space and the
/// reserved characters servents escaped).
pub fn percent_encode(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b' ' => out.push_str("%20"),
            b'%' => out.push_str("%25"),
            b'?' => out.push_str("%3F"),
            b'#' => out.push_str("%23"),
            _ => out.push(b as char),
        }
    }
    out
}

/// Decodes `%XX` escapes; invalid escapes pass through literally, the
/// tolerant behaviour of deployed servents.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 {
            if let (Some(h), Some(l)) = (
                bytes.get(i + 1).and_then(|c| (*c as char).to_digit(16)),
                bytes.get(i + 2).and_then(|c| (*c as char).to_digit(16)),
            ) {
                out.push(((h * 16 + l) as u8) as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// Builds the GET request for `target`.
pub fn encode_request(target: &RequestTarget, user_agent: &str) -> Vec<u8> {
    let path = match target {
        RequestTarget::ByIndex { index, name } => {
            format!("/get/{index}/{}", percent_encode(name))
        }
        RequestTarget::ByUrn(d) => format!("/uri-res/N2R?{}", d.to_urn()),
    };
    format!("GET {path} HTTP/1.1\r\nUser-Agent: {user_agent}\r\nConnection: close\r\n\r\n")
        .into_bytes()
}

/// Builds a `200 OK` response head for a `body_len`-byte upload.
pub fn encode_response_ok(server: &str, body_len: usize) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nServer: {server}\r\nContent-Type: application/binary\r\nContent-Length: {body_len}\r\n\r\n"
    )
    .into_bytes()
}

/// Builds an error response (404 style) with an empty body.
pub fn encode_response_err(server: &str, code: u16, reason: &str) -> Vec<u8> {
    format!("HTTP/1.1 {code} {reason}\r\nServer: {server}\r\nContent-Length: 0\r\n\r\n")
        .into_bytes()
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// Sans-IO upload-request parser: feed bytes until a full request head
/// appears.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
}

impl RequestReader {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Returns the parsed request once complete.
    pub fn request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let end = match find_head_end(&self.buf) {
            Some(i) => i,
            None => {
                if self.buf.len() > MAX_HEAD {
                    return Err(HttpError::HeadTooLong);
                }
                return Ok(None);
            }
        };
        let head = std::str::from_utf8(&self.buf[..end]).map_err(|_| HttpError::BadHeader)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
        let mut parts = request_line.split_whitespace();
        if parts.next() != Some("GET") {
            return Err(HttpError::BadRequestLine);
        }
        let raw_path = parts.next().ok_or(HttpError::BadRequestLine)?;
        if !matches!(parts.next(), Some("HTTP/1.0") | Some("HTTP/1.1")) {
            return Err(HttpError::BadRequestLine);
        }
        let mut user_agent = String::new();
        for line in lines {
            let (k, v) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            if k.trim().eq_ignore_ascii_case("user-agent") {
                user_agent = v.trim().to_string();
            }
        }
        let target = parse_target(raw_path)?;
        self.buf.drain(..end + 4);
        Ok(Some(HttpRequest { target, user_agent }))
    }
}

fn parse_target(path: &str) -> Result<RequestTarget, HttpError> {
    if let Some(rest) = path.strip_prefix("/get/") {
        let (index, name) = rest.split_once('/').ok_or(HttpError::BadTarget)?;
        let index: u32 = index.parse().map_err(|_| HttpError::BadTarget)?;
        if name.is_empty() {
            return Err(HttpError::BadTarget);
        }
        return Ok(RequestTarget::ByIndex {
            index,
            name: percent_decode(name),
        });
    }
    if let Some(urn) = path.strip_prefix("/uri-res/N2R?") {
        let b32 = urn.strip_prefix("urn:sha1:").ok_or(HttpError::BadTarget)?;
        let raw = base32_decode(b32).map_err(|_| HttpError::BadTarget)?;
        if raw.len() != 20 {
            return Err(HttpError::BadTarget);
        }
        let mut d = [0u8; 20];
        d.copy_from_slice(&raw);
        return Ok(RequestTarget::ByUrn(Sha1Digest(d)));
    }
    Err(HttpError::BadTarget)
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// Sans-IO download-response reader: head, then exactly `Content-Length`
/// body bytes.
#[derive(Debug)]
pub struct ResponseReader {
    buf: Vec<u8>,
    state: RespState,
    /// Refuse bodies larger than this (downloads in the study are capped).
    max_body: usize,
}

#[derive(Debug, PartialEq, Eq)]
enum RespState {
    Head,
    Body { status: u16, len: usize },
    Done,
}

/// A completed HTTP download.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    pub status: u16,
    pub body: Vec<u8>,
}

impl ResponseReader {
    pub fn new(max_body: usize) -> Self {
        ResponseReader {
            buf: Vec::new(),
            state: RespState::Head,
            max_body,
        }
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Returns the response once the full body has arrived.
    pub fn response(&mut self) -> Result<Option<HttpResponse>, HttpError> {
        if self.state == RespState::Head {
            let end = match find_head_end(&self.buf) {
                Some(i) => i,
                None => {
                    if self.buf.len() > MAX_HEAD {
                        return Err(HttpError::HeadTooLong);
                    }
                    return Ok(None);
                }
            };
            let head = std::str::from_utf8(&self.buf[..end]).map_err(|_| HttpError::BadHeader)?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().ok_or(HttpError::BadStatusLine)?;
            let mut parts = status_line.split_whitespace();
            let proto = parts.next().ok_or(HttpError::BadStatusLine)?;
            if !proto.starts_with("HTTP/1.") {
                return Err(HttpError::BadStatusLine);
            }
            let status: u16 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(HttpError::BadStatusLine)?;
            let mut len = None;
            for line in lines {
                let (k, v) = line.split_once(':').ok_or(HttpError::BadHeader)?;
                if k.trim().eq_ignore_ascii_case("content-length") {
                    len = v.trim().parse::<usize>().ok();
                }
            }
            let len = len.ok_or(HttpError::MissingLength)?;
            if len > self.max_body {
                return Err(HttpError::BodyTooLong);
            }
            self.buf.drain(..end + 4);
            self.state = RespState::Body { status, len };
        }
        if let RespState::Body { status, len } = self.state {
            if self.buf.len() < len {
                return Ok(None);
            }
            let body = self.buf[..len].to_vec();
            self.buf.drain(..len);
            self.state = RespState::Done;
            return Ok(Some(HttpResponse { status, body }));
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// GIV (push) handshake
// ---------------------------------------------------------------------------

/// A parsed `GIV` opening line from a pushing servent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Giv {
    pub index: u32,
    pub servent_guid: Guid,
    pub name: String,
}

/// Encodes `GIV <index>:<guid-hex>/<filename>\n\n`.
pub fn encode_giv(giv: &Giv) -> Vec<u8> {
    format!(
        "GIV {}:{}/{}\n\n",
        giv.index,
        giv.servent_guid.to_hex(),
        percent_encode(&giv.name)
    )
    .into_bytes()
}

/// Parses a GIV line from the front of `data`; returns the line and bytes
/// consumed, or `Ok(None)` while incomplete.
pub fn parse_giv(data: &[u8]) -> Result<Option<(Giv, usize)>, HttpError> {
    let end = match data.windows(2).position(|w| w == b"\n\n") {
        Some(i) => i,
        None => {
            if data.len() > MAX_HEAD {
                return Err(HttpError::BadGiv);
            }
            return Ok(None);
        }
    };
    let line = std::str::from_utf8(&data[..end]).map_err(|_| HttpError::BadGiv)?;
    let rest = line.strip_prefix("GIV ").ok_or(HttpError::BadGiv)?;
    let (index, rest) = rest.split_once(':').ok_or(HttpError::BadGiv)?;
    let (guid_hex, name) = rest.split_once('/').ok_or(HttpError::BadGiv)?;
    let giv = Giv {
        index: index.parse().map_err(|_| HttpError::BadGiv)?,
        servent_guid: Guid::from_hex(guid_hex).ok_or(HttpError::BadGiv)?,
        name: percent_decode(name),
    };
    Ok(Some((giv, end + 2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_hashes::sha1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn request_roundtrip_by_index() {
        let t = RequestTarget::ByIndex {
            index: 42,
            name: "free music.exe".into(),
        };
        let wire = encode_request(&t, "LimeWire/4.12");
        assert!(
            wire.windows(3).any(|w| w == b"%20"),
            "space must be escaped"
        );
        let mut r = RequestReader::new();
        for chunk in wire.chunks(9) {
            r.push(chunk);
        }
        let req = r.request().unwrap().unwrap();
        assert_eq!(req.target, t);
        assert_eq!(req.user_agent, "LimeWire/4.12");
    }

    #[test]
    fn request_roundtrip_by_urn() {
        let d = sha1(b"some file");
        let t = RequestTarget::ByUrn(d);
        let wire = encode_request(&t, "x");
        let mut r = RequestReader::new();
        r.push(&wire);
        assert_eq!(r.request().unwrap().unwrap().target, t);
    }

    #[test]
    fn bad_targets_are_rejected() {
        for path in [
            "/",
            "/get/",
            "/get/12",
            "/get/x/file.exe",
            "/uri-res/N2R?urn:md5:abc",
            "/favicon.ico",
        ] {
            let wire = format!("GET {path} HTTP/1.1\r\n\r\n");
            let mut r = RequestReader::new();
            r.push(wire.as_bytes());
            assert!(r.request().is_err(), "{path} should be rejected");
        }
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let mut r = RequestReader::new();
        r.push(b"POST /get/1/x HTTP/1.1\r\n\r\n");
        assert_eq!(r.request(), Err(HttpError::BadRequestLine));
    }

    #[test]
    fn response_roundtrip_with_chunked_delivery() {
        let body: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut wire = encode_response_ok("P2PMal/0.1", body.len());
        wire.extend_from_slice(&body);
        let mut r = ResponseReader::new(1 << 20);
        let mut result = None;
        for chunk in wire.chunks(777) {
            r.push(chunk);
            if let Some(resp) = r.response().unwrap() {
                result = Some(resp);
            }
        }
        let resp = result.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, body);
    }

    #[test]
    fn response_404_has_empty_body() {
        let wire = encode_response_err("S", 404, "Not Found");
        let mut r = ResponseReader::new(1024);
        r.push(&wire);
        let resp = r.response().unwrap().unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.body.is_empty());
    }

    #[test]
    fn oversized_body_is_refused_before_download() {
        let wire = encode_response_ok("S", 10_000_000);
        let mut r = ResponseReader::new(1_000_000);
        r.push(&wire);
        assert_eq!(r.response(), Err(HttpError::BodyTooLong));
    }

    #[test]
    fn missing_content_length_is_an_error() {
        let mut r = ResponseReader::new(1024);
        r.push(b"HTTP/1.1 200 OK\r\nServer: x\r\n\r\n");
        assert_eq!(r.response(), Err(HttpError::MissingLength));
    }

    #[test]
    fn giv_roundtrip() {
        let guid = Guid::random(&mut StdRng::seed_from_u64(4));
        let giv = Giv {
            index: 9,
            servent_guid: guid,
            name: "my file.exe".into(),
        };
        let wire = encode_giv(&giv);
        let (parsed, used) = parse_giv(&wire).unwrap().unwrap();
        assert_eq!(parsed, giv);
        assert_eq!(used, wire.len());
        // Incomplete line waits.
        assert_eq!(parse_giv(&wire[..5]).unwrap(), None);
    }

    #[test]
    fn giv_rejects_malformed_lines() {
        for bad in [
            "GIVE 1:00/x\n\n",
            "GIV 1-00/x\n\n",
            "GIV x:0011/y\n\n",
            "GIV 1:zz/y\n\n",
        ] {
            assert!(parse_giv(bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn percent_codec_roundtrip() {
        for s in ["plain", "has space", "odd%chars?#", "a%20b"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
        // Tolerant decode of invalid escapes.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
