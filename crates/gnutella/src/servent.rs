//! The Gnutella 0.6 servent: a complete node (ultrapeer or leaf) running
//! over the [`p2pmal_netsim::App`] interface.
//!
//! One servent owns one listening socket. Inbound connections are sniffed:
//! `GNUTELLA CONNECT` starts an overlay handshake, `GET`/`HEAD` starts an
//! HTTP upload, and `GIV` completes a push we requested earlier. Outbound
//! connections carry an intent recorded at dial time (peer, download, or
//! push-upload).
//!
//! Routing follows the 0.6 rules: flooded queries with GUID duplicate
//! suppression, QRP-filtered last-hop delivery to leaves, reverse-path
//! routing of query hits by query GUID, and reverse-path routing of PUSH by
//! servent GUID.

use crate::guid::Guid;
use crate::handshake::{Admission, HandshakeConfig, HsEvent, Initiator, RespEvent, Responder};
use crate::http::{
    encode_giv, encode_request, encode_response_err, encode_response_ok, parse_giv, Giv,
    HttpRequest, RequestReader, RequestTarget, ResponseReader,
};
use crate::message::{encode_message, Header, MessageReader, MsgType};
use crate::payload::{
    HitResult, Ping, Pong, Push, QhdFlags, Query, QueryHit, QHD_PUSH, QHD_UPLOADED,
};
use crate::qrp::{qrp_hash_full, QrpReceiver, QrpTable, RouteMsg};
use p2pmal_corpus::{
    Catalog, CompiledQuery, ContentRef, ContentStore, HostLibrary, NameInterner, QueryCache,
    Roster, SharedFile,
};
use p2pmal_netsim::{
    telemetry_span as span, App, ConnId, Ctx, Direction, EventBody, EventCategory, FifoMap,
    FifoSet, HostAddr, SimDuration, SimTime, SpanCtx, Subsystem, VecMap,
};
use rand::RngCore;
use std::collections::VecDeque;
use std::sync::Arc;

/// File indexes at or above this value are fabricated query-echo responses;
/// the index encodes `(family, size_idx)` so uploads need no per-query
/// state: `index = ECHO_INDEX_BASE + family * 16 + size_idx`.
pub const ECHO_INDEX_BASE: u32 = 0x0100_0000;

/// Timer tokens.
const TIMER_MAINTENANCE: u64 = 0;
const TIMER_AUTO_QUERY: u64 = 1;
const TIMER_DL_BASE: u64 = 1 << 32;

/// FIFO bounds of the route/duplicate tables (entries, not bytes).
const SEEN_BOUND: usize = 16_384;
const QUERY_ROUTE_BOUND: usize = 16_384;
const PUSH_ROUTE_BOUND: usize = 8_192;

/// Node role in the two-tier overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Ultrapeer,
    Leaf,
}

/// The content world every servent references (shared, immutable).
#[derive(Clone)]
pub struct SharedWorld {
    pub catalog: Arc<Catalog>,
    pub roster: Arc<Roster>,
    pub store: Arc<ContentStore>,
    /// World-wide compile cache: a query text floods through hundreds of
    /// servents, but is tokenized and fingerprinted exactly once.
    queries: Arc<QueryCache>,
    /// World-wide filename dedup table: every library registered against
    /// this world interns its names here, so a catalog variant's name is
    /// stored once no matter how many hosts replicate it.
    pub names: Arc<NameInterner>,
}

impl SharedWorld {
    pub fn new(catalog: Arc<Catalog>, roster: Arc<Roster>, store: Arc<ContentStore>) -> Self {
        SharedWorld {
            catalog,
            roster,
            store,
            queries: Arc::new(QueryCache::new()),
            names: Arc::new(NameInterner::new()),
        }
    }

    /// The compiled (tokenized-once) form of `text`, shared across every
    /// servent in this world.
    pub fn compile_query(&self, text: &str) -> Arc<CompiledQuery> {
        self.queries.compile(text)
    }

    fn payload_of(&self, r: ContentRef) -> Vec<u8> {
        self.store.payload(r, &self.catalog, &self.roster)
    }
}

/// Servent tunables. Defaults mirror a 2006 LimeWire deployment.
#[derive(Debug, Clone)]
pub struct ServentConfig {
    pub role: Role,
    pub user_agent: String,
    pub listen_port: u16,
    /// Overlay degree: ultrapeer↔ultrapeer connections for ultrapeers, or
    /// number of ultrapeers a leaf attaches to.
    pub target_degree: usize,
    /// Leaf slots (ultrapeers only).
    pub max_leaf_slots: usize,
    /// Addresses to dial when the host cache is empty. `Arc`-shared: every
    /// leaf in a population points at the same ultrapeer list, so spawning
    /// N leaves costs one allocation instead of N copies.
    pub bootstrap: std::sync::Arc<[HostAddr]>,
    /// TTL on originated queries.
    pub query_ttl: u8,
    /// Result cap per query answered.
    pub max_results: usize,
    /// When set, this node originates a popularity-sampled query at this
    /// interval (ambient user traffic).
    pub auto_query: Option<SimDuration>,
    /// Keep [`ServentEvent`]s for the owner to drain (instrumented nodes);
    /// plain population nodes leave this off.
    pub collect_events: bool,
    /// Download size cap.
    pub max_download_bytes: usize,
    /// Give up on a download (connect, push, transfer) after this long.
    pub download_timeout: SimDuration,
    /// Maintenance tick period.
    pub tick: SimDuration,
}

impl ServentConfig {
    pub fn ultrapeer() -> Self {
        ServentConfig {
            role: Role::Ultrapeer,
            user_agent: "LimeWire/4.12.3".into(),
            listen_port: 6346,
            target_degree: 6,
            max_leaf_slots: 30,
            bootstrap: std::sync::Arc::from([]),
            query_ttl: 3,
            max_results: 64,
            auto_query: None,
            collect_events: false,
            max_download_bytes: 64 << 20,
            download_timeout: SimDuration::from_secs(120),
            tick: SimDuration::from_secs(10),
        }
    }

    pub fn leaf() -> Self {
        ServentConfig {
            role: Role::Leaf,
            target_degree: 3,
            max_leaf_slots: 0,
            ..Self::ultrapeer()
        }
    }

    pub fn with_bootstrap(mut self, hosts: impl Into<std::sync::Arc<[HostAddr]>>) -> Self {
        self.bootstrap = hosts.into();
        self
    }
}

/// Why a download failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownloadError {
    /// TCP connect to the advertised address failed (dead, NATed, bogus).
    ConnectFailed,
    /// PUSH was routed but no GIV came back in time.
    Timeout,
    /// Upload side returned an HTTP error.
    Http(u16),
    /// Framing/protocol violation on the transfer connection.
    Protocol(String),
    /// No overlay route existed for the PUSH.
    NoPushRoute,
}

/// A completed download, with everything the study logs.
#[derive(Debug, Clone)]
pub struct DownloadOutcome {
    pub id: u64,
    pub at: SimTime,
    pub result: Result<Vec<u8>, DownloadError>,
}

/// Observable servent happenings, drained by instrumented owners.
#[derive(Debug, Clone)]
pub enum ServentEvent {
    /// An overlay connection finished its handshake.
    PeerUp {
        conn: ConnId,
        addr: HostAddr,
        ultrapeer: bool,
        inbound: bool,
    },
    PeerDown {
        conn: ConnId,
    },
    /// A query hit answering one of *our* queries arrived.
    QueryHit {
        at: SimTime,
        query_guid: Guid,
        hit: QueryHit,
    },
    /// We saw (routed or received) a query.
    QuerySeen {
        at: SimTime,
        text: String,
    },
    DownloadDone(DownloadOutcome),
}

/// How to fetch a file we learned about from a query hit.
#[derive(Debug, Clone)]
pub struct DownloadRequest {
    /// Address advertised in the hit (may be private / undialable).
    pub addr: HostAddr,
    pub index: u32,
    pub name: String,
    /// The responding servent's GUID (for PUSH routing).
    pub servent_guid: Guid,
    /// Fetch strategy.
    pub method: DownloadMethod,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownloadMethod {
    /// Dial the advertised address and GET.
    Direct,
    /// Route a PUSH and wait for the GIV callback.
    Push,
}

/// Counters the benches and experiments read.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServentStats {
    pub queries_originated: u64,
    pub queries_routed: u64,
    pub queries_answered: u64,
    pub hits_sent: u64,
    pub hits_routed: u64,
    pub hits_received: u64,
    pub pushes_routed: u64,
    pub pushes_served: u64,
    pub uploads_served: u64,
    pub downloads_ok: u64,
    pub downloads_failed: u64,
    pub qrp_last_hop_suppressed: u64,
    pub bad_messages: u64,
}

// ---------------------------------------------------------------------------
// Connection bookkeeping
// ---------------------------------------------------------------------------

struct PeerConn {
    reader: MessageReader,
    ultrapeer: bool,
    /// QRP table announced by this peer (meaningful for leaf connections on
    /// an ultrapeer).
    qrp: QrpReceiver,
}

struct DownloadConn {
    id: u64,
    reader: ResponseReader,
}

struct PushUploadConn {
    index: u32,
    name: String,
    reader: RequestReader,
}

enum ConnKind {
    /// Outbound overlay dial: waiting for TCP, then handshaking.
    HsOut(Initiator),
    /// Inbound, protocol not yet identified.
    SniffIn(Vec<u8>),
    /// Inbound overlay handshake in progress.
    HsIn(Responder),
    /// Established overlay connection.
    Peer(PeerConn),
    /// Outbound download (dialing or transferring).
    Download(DownloadConn),
    /// Outbound push upload: dial requester, say GIV, then serve one GET.
    PushUpload(PushUploadConn),
    /// Inbound upload (after sniffing a GET).
    Upload(RequestReader),
    /// Closed / poisoned; awaiting on_closed.
    Dead,
}

/// A download not yet bound to a connection (push pending) or in flight.
struct PendingDownload {
    id: u64,
    request: DownloadRequest,
}

// ---------------------------------------------------------------------------
// Servent
// ---------------------------------------------------------------------------

/// A Gnutella servent. Implements [`App`]; instrumented owners may embed it
/// and forward the `App` callbacks, using [`Servent::search`],
/// [`Servent::begin_download`] and [`Servent::drain_events`].
pub struct Servent {
    config: ServentConfig,
    world: SharedWorld,
    library: HostLibrary,
    guid: Guid,
    conns: VecMap<ConnId, ConnKind>,
    /// Current outbound overlay dials/sessions, to avoid duplicate dials.
    outbound_targets: VecMap<ConnId, HostAddr>,
    /// GUID duplicate suppression, FIFO-bounded.
    seen: FifoSet<Guid>,
    /// Query GUID -> where hits go back (None = we originated it).
    /// FIFO-bounded route table.
    query_routes: FifoMap<Guid, Option<ConnId>>,
    /// Servent GUID -> conn that delivered its hits (PUSH routing).
    /// FIFO-bounded route table.
    push_routes: FifoMap<Guid, ConnId>,
    /// Known ultrapeer addresses.
    host_cache: Vec<HostAddr>,
    /// Downloads waiting for a GIV, keyed by (servent guid, index).
    pending_pushes: VecMap<(Guid, u32), PendingDownload>,
    /// Direct downloads whose GET goes out once the dial completes.
    direct_requests: VecMap<u64, DownloadRequest>,
    /// Download ids currently bound to a connection.
    active_downloads: VecMap<u64, ConnId>,
    next_download: u64,
    events: VecDeque<ServentEvent>,
    stats: ServentStats,
    started: bool,
}

impl Servent {
    pub fn new(config: ServentConfig, world: SharedWorld, mut library: HostLibrary) -> Self {
        library.set_interner(world.names.clone());
        Servent {
            config,
            world,
            library,
            guid: Guid([0u8; 16]), // replaced in on_start with a seeded GUID
            conns: VecMap::new(),
            outbound_targets: VecMap::new(),
            seen: FifoSet::bounded(SEEN_BOUND),
            query_routes: FifoMap::bounded(QUERY_ROUTE_BOUND),
            push_routes: FifoMap::bounded(PUSH_ROUTE_BOUND),
            host_cache: Vec::new(),
            pending_pushes: VecMap::new(),
            direct_requests: VecMap::new(),
            active_downloads: VecMap::new(),
            next_download: 1,
            events: VecDeque::new(),
            stats: ServentStats::default(),
            started: false,
        }
    }

    pub fn config(&self) -> &ServentConfig {
        &self.config
    }

    pub fn stats(&self) -> ServentStats {
        self.stats
    }

    pub fn library(&self) -> &HostLibrary {
        &self.library
    }

    /// The shared content world this servent lives in.
    pub fn world(&self) -> &SharedWorld {
        &self.world
    }

    /// The servent GUID (valid after `on_start`).
    pub fn servent_guid(&self) -> Guid {
        self.guid
    }

    /// Established overlay connections.
    pub fn peer_count(&self) -> usize {
        self.conns
            .values()
            .filter(|k| matches!(k, ConnKind::Peer(_)))
            .count()
    }

    /// Drains collected events (empty unless `collect_events`).
    pub fn drain_events(&mut self) -> Vec<ServentEvent> {
        self.events.drain(..).collect()
    }

    /// Deterministic deep-heap estimate (see [`App::memory_estimate`]):
    /// container storage plus the dominant owned allocations — per-leaf
    /// QRP state on ultrapeers and the share library's match metadata.
    fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut b = size_of::<Self>() as u64;
        b += self.conns.heap_bytes();
        for k in self.conns.values() {
            if let ConnKind::Peer(p) = k {
                b += p.qrp.heap_bytes();
            }
        }
        b += self.outbound_targets.heap_bytes();
        b += self.seen.heap_bytes();
        b += self.query_routes.heap_bytes();
        b += self.push_routes.heap_bytes();
        b += (self.host_cache.capacity() * size_of::<HostAddr>()) as u64;
        // config.bootstrap is Arc-shared across the population: not charged
        // per node.
        b += self.pending_pushes.heap_bytes();
        b += self.direct_requests.heap_bytes();
        b += self.active_downloads.heap_bytes();
        b += (self.events.capacity() * size_of::<ServentEvent>()) as u64;
        b += self.library.heap_bytes();
        b
    }

    /// Originates a keyword query; returns its GUID so the owner can match
    /// incoming [`ServentEvent::QueryHit`]s.
    pub fn search(&mut self, ctx: &mut Ctx<'_>, text: &str) -> Guid {
        let guid = Guid::random(ctx.rng());
        self.remember_seen(guid);
        self.route_query_back(guid, None);
        // Trace root: every event descending from this query (matches,
        // downloads, verdicts) derives its trace id from the query GUID.
        if ctx.telemetry_on(EventCategory::Query) {
            let trace = span::trace_from_guid(&guid.0);
            ctx.emit_spanned(
                EventBody::QueryIssued {
                    text: text.to_string(),
                    seq: self.stats.queries_originated,
                },
                SpanCtx::root(trace, span::span_root(trace)),
            );
        }
        // Tokenize at origination: every hop this query floods through
        // reuses the compiled form out of the world's cache.
        let _ = self.world.compile_query(text);
        let q = Query::keyword(text);
        let payload = q.encode();
        let mut wire = Vec::with_capacity(payload.len() + 23);
        encode_message(
            guid,
            MsgType::Query,
            self.config.query_ttl,
            0,
            &payload,
            &mut wire,
        );
        let mut targets: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, k)| matches!(k, ConnKind::Peer(_)))
            .map(|(&c, _)| c)
            .collect();
        // VecMap iteration is already key-sorted; the sort stays as a
        // zero-cost guard on the run-to-run sequencing invariant.
        targets.sort_unstable();
        for t in targets {
            ctx.send(t, &wire);
        }
        self.stats.queries_originated += 1;
        guid
    }

    /// Starts a download; completion arrives as
    /// [`ServentEvent::DownloadDone`].
    pub fn begin_download(&mut self, ctx: &mut Ctx<'_>, request: DownloadRequest) -> u64 {
        let id = self.next_download;
        self.next_download += 1;
        ctx.set_timer(self.config.download_timeout, TIMER_DL_BASE | id);
        match request.method {
            DownloadMethod::Direct => {
                let conn = ctx.connect(request.addr);
                self.active_downloads.insert(id, conn);
                self.conns.insert(
                    conn,
                    ConnKind::Download(DownloadConn {
                        id,
                        reader: ResponseReader::new(self.config.max_download_bytes),
                    }),
                );
                // Remember target details for the GET we send on connect.
                self.direct_requests.insert(id, request);
            }
            DownloadMethod::Push => {
                let Some(&route) = self.push_routes.get(&request.servent_guid) else {
                    self.finish_download(ctx, id, Err(DownloadError::NoPushRoute));
                    return id;
                };
                let push = Push {
                    servent_guid: request.servent_guid,
                    index: request.index,
                    // We advertise our *external* address: pushes only work
                    // when the requester is dialable.
                    ip: ctx.external_addr().ip,
                    port: self.config.listen_port,
                };
                let guid = Guid::random(ctx.rng());
                let mut wire = Vec::new();
                encode_message(guid, MsgType::Push, 7, 0, &push.encode(), &mut wire);
                ctx.send(route, &wire);
                self.pending_pushes.insert(
                    (request.servent_guid, request.index),
                    PendingDownload { id, request },
                );
            }
        }
        id
    }

    // -- internals ---------------------------------------------------------

    fn emit(&mut self, ev: ServentEvent) {
        if self.config.collect_events {
            self.events.push_back(ev);
            if self.events.len() > 1 << 20 {
                self.events.pop_front();
            }
        }
    }

    fn remember_seen(&mut self, guid: Guid) -> bool {
        self.seen.insert(guid)
    }

    fn route_query_back(&mut self, guid: Guid, via: Option<ConnId>) {
        self.query_routes.insert(guid, via);
    }

    fn remember_push_route(&mut self, guid: Guid, conn: ConnId) {
        self.push_routes.insert(guid, conn);
    }

    fn add_hosts(&mut self, hosts: impl IntoIterator<Item = HostAddr>) {
        for h in hosts {
            if !self.host_cache.contains(&h) {
                self.host_cache.push(h);
                if self.host_cache.len() > 1000 {
                    self.host_cache.remove(0);
                }
            }
        }
    }

    fn handshake_config(&self, ctx: &Ctx<'_>) -> HandshakeConfig {
        HandshakeConfig {
            user_agent: self.config.user_agent.clone(),
            ultrapeer: self.config.role == Role::Ultrapeer,
            // NATed nodes advertise the address they believe they have —
            // an RFC 1918 address.
            listen_addr: Some(HostAddr::new(ctx.local_addr().ip, self.config.listen_port)),
        }
    }

    /// Dial overlay peers until we reach the target degree.
    fn maintain_connectivity(&mut self, ctx: &mut Ctx<'_>) {
        let have = self.peer_count()
            + self
                .conns
                .values()
                .filter(|k| matches!(k, ConnKind::HsOut(_)))
                .count();
        if have >= self.config.target_degree {
            return;
        }
        let mut candidates: Vec<HostAddr> = self
            .host_cache
            .iter()
            .chain(self.config.bootstrap.iter())
            .copied()
            .collect();
        candidates.sort();
        candidates.dedup();
        // Never dial ourselves or a host we already dialed.
        let me = HostAddr::new(ctx.external_addr().ip, self.config.listen_port);
        candidates.retain(|c| *c != me && !self.outbound_targets.values().any(|t| t == c));
        let mut dialed = 0;
        while have + dialed < self.config.target_degree && !candidates.is_empty() {
            let i = (ctx.rng().next_u64() % candidates.len() as u64) as usize;
            let target = candidates.swap_remove(i);
            let init = Initiator::new(self.handshake_config(ctx));
            let conn = ctx.connect(target);
            self.conns.insert(conn, ConnKind::HsOut(init));
            self.outbound_targets.insert(conn, target);
            dialed += 1;
        }
    }

    /// Sends our QRP table on a fresh leaf->ultrapeer connection. Echo-worm
    /// hosts saturate the table so every query reaches them.
    fn send_qrp(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let table = if self.library.has_echo() {
            // Worm behaviour: claim to match everything.
            saturated_table()
        } else {
            let mut t = QrpTable::default_table();
            for f in self.library.files() {
                t.insert_name(&f.name);
            }
            t
        };
        for msg in table.to_messages(2048, true) {
            let guid = Guid::random(ctx.rng());
            let mut wire = Vec::new();
            encode_message(guid, MsgType::Route, 1, 0, &msg.encode(), &mut wire);
            ctx.send(conn, &wire);
        }
    }

    fn send_ping(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let guid = Guid::random(ctx.rng());
        let mut wire = Vec::new();
        encode_message(
            guid,
            MsgType::Ping,
            2,
            0,
            &Ping::default().encode(),
            &mut wire,
        );
        ctx.send(conn, &wire);
    }

    fn on_peer_established(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        peer_ultrapeer: bool,
        inbound: bool,
        leftover: Vec<u8>,
    ) {
        let mut pc = PeerConn {
            reader: MessageReader::new(),
            ultrapeer: peer_ultrapeer,
            qrp: QrpReceiver::new(),
        };
        pc.reader.push(&leftover);
        self.conns.insert(conn, ConnKind::Peer(pc));
        self.emit(ServentEvent::PeerUp {
            conn,
            addr: HostAddr::new(ctx.external_addr().ip, 0),
            ultrapeer: peer_ultrapeer,
            inbound,
        });
        if self.config.role == Role::Leaf && peer_ultrapeer {
            self.send_qrp(ctx, conn);
        }
        self.send_ping(ctx, conn);
        // Process any messages that arrived glued to the handshake.
        self.pump_peer(ctx, conn);
    }

    /// Decodes and handles buffered messages on a peer connection.
    fn pump_peer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        loop {
            let msg = {
                let Some(ConnKind::Peer(pc)) = self.conns.get_mut(&conn) else {
                    return;
                };
                match pc.reader.next_message() {
                    Ok(Some(m)) => m,
                    Ok(None) => return,
                    Err(_) => {
                        self.stats.bad_messages += 1;
                        self.drop_conn(ctx, conn);
                        return;
                    }
                }
            };
            self.handle_message(ctx, conn, msg.0, &msg.1);
        }
    }

    fn handle_message(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, header: Header, payload: &[u8]) {
        match header.msg_type {
            MsgType::Ping => self.handle_ping(ctx, conn, header),
            MsgType::Pong => self.handle_pong(payload),
            MsgType::Query => self.handle_query(ctx, conn, header, payload),
            MsgType::QueryHit => self.handle_query_hit(ctx, conn, header, payload),
            MsgType::Push => self.handle_push(ctx, conn, header, payload),
            MsgType::Route => self.handle_route(ctx, conn, payload),
            MsgType::Bye => self.drop_conn(ctx, conn),
        }
    }

    fn handle_ping(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, header: Header) {
        if !self.remember_seen(header.guid) {
            return;
        }
        let shared: u64 = self.library.files().iter().map(|f| f.size).sum::<u64>() / 1024;
        let pong = Pong {
            port: self.config.listen_port,
            ip: ctx.local_addr().ip,
            file_count: self.library.files().len() as u32,
            kbytes: shared as u32,
            ggep: Vec::new(),
        };
        let mut wire = Vec::new();
        encode_message(
            header.guid,
            MsgType::Pong,
            header.hops.max(1),
            0,
            &pong.encode(),
            &mut wire,
        );
        ctx.send(conn, &wire);
        // Pong-cache style: also advertise a few known ultrapeers.
        let extras: Vec<HostAddr> = self.host_cache.iter().rev().take(3).copied().collect();
        for h in extras {
            let pong = Pong {
                port: h.port,
                ip: h.ip,
                file_count: 0,
                kbytes: 0,
                ggep: Vec::new(),
            };
            let mut wire = Vec::new();
            encode_message(header.guid, MsgType::Pong, 1, 1, &pong.encode(), &mut wire);
            ctx.send(conn, &wire);
        }
    }

    fn handle_pong(&mut self, payload: &[u8]) {
        let Ok(pong) = Pong::parse(payload) else {
            self.stats.bad_messages += 1;
            return;
        };
        let addr = HostAddr::new(pong.ip, pong.port);
        if !addr.is_private() && pong.port != 0 {
            self.add_hosts([addr]);
        }
    }

    fn handle_query(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, header: Header, payload: &[u8]) {
        let Ok(query) = Query::parse(payload) else {
            self.stats.bad_messages += 1;
            return;
        };
        if !self.remember_seen(header.guid) {
            return; // duplicate via another path
        }
        self.stats.queries_routed += 1;
        let at = ctx.now();
        let text = query.text.clone();
        self.emit(ServentEvent::QuerySeen { at, text });
        self.route_query_back(header.guid, Some(conn));

        // One compile per hop (usually a cache hit from the origination),
        // shared by the library answer and the QRP last-hop filter below.
        let compiled = self.world.compile_query(&query.text);

        // Answer from our own library.
        self.answer_query(ctx, header, &compiled);

        if self.config.role == Role::Leaf {
            return; // leaves never forward
        }
        // Forward to other ultrapeers while TTL remains.
        if let Some(fwd) = header.hop() {
            let mut wire = Vec::new();
            encode_message(
                fwd.guid,
                MsgType::Query,
                fwd.ttl,
                fwd.hops,
                payload,
                &mut wire,
            );
            let mut targets: Vec<ConnId> = self
                .conns
                .iter()
                .filter(|(&c, k)| c != conn && matches!(k, ConnKind::Peer(p) if p.ultrapeer))
                .map(|(&c, _)| c)
                .collect();
            // VecMap iteration is already key-sorted; the sort stays as a
            // zero-cost guard on the run-to-run sequencing invariant.
            targets.sort_unstable();
            for t in targets {
                ctx.send(t, &wire);
            }
        }
        // Last-hop delivery to QRP-matching leaves (always, regardless of
        // remaining TTL).
        let mut wire = Vec::new();
        encode_message(
            header.guid,
            MsgType::Query,
            1,
            header.hops.saturating_add(1),
            payload,
            &mut wire,
        );
        // Hash the query's QRP keywords once (compiled terms of length >= 3
        // are exactly `qrp::keywords(text)`), then test each leaf table via
        // a shift + lookup instead of re-tokenizing and re-hashing per leaf.
        let qrp_hashes: Vec<u64> = ctx.time(Subsystem::QueryMatch, || {
            compiled
                .terms()
                .iter()
                .filter(|t| t.len() >= 3)
                .map(|t| qrp_hash_full(t))
                .collect()
        });
        let mut suppressed = 0u64;
        let mut targets: Vec<ConnId> = self
            .conns
            .iter()
            .filter_map(|(&c, k)| match k {
                ConnKind::Peer(p) if c != conn && !p.ultrapeer => match p.qrp.filter() {
                    Some(t) if !t.might_match_hashes(&qrp_hashes) => {
                        suppressed += 1;
                        None
                    }
                    _ => Some(c),
                },
                _ => None,
            })
            .collect();
        self.stats.qrp_last_hop_suppressed += suppressed;
        targets.sort_unstable();
        for t in targets {
            ctx.send(t, &wire);
        }
    }

    /// Builds and sends our QUERYHIT for the compiled query, if the library
    /// matches.
    fn answer_query(&mut self, ctx: &mut Ctx<'_>, header: Header, query: &CompiledQuery) {
        let files = ctx.time(Subsystem::QueryMatch, || {
            self.library
                .respond_compiled(query, self.config.max_results)
        });
        if files.is_empty() {
            return;
        }
        self.stats.queries_answered += 1;
        self.stats.hits_sent += 1;
        if ctx.telemetry_on(EventCategory::Query) {
            // `header.hops` counts hops *already traveled* when the query
            // reached us, so overlay distance from the origin is hops + 1.
            let trace = span::trace_from_guid(&header.guid.0);
            ctx.emit_spanned(
                EventBody::QueryMatched {
                    text: query.raw().to_string(),
                    results: files.len() as u64,
                    hops: header.hops as u64 + 1,
                },
                SpanCtx::child(
                    trace,
                    span::span_match_guid(trace, &self.guid.0),
                    span::span_root(trace),
                ),
            );
        }
        let is_nat = ctx.local_addr().ip != ctx.external_addr().ip;
        let results = files
            .iter()
            .map(|f| HitResult {
                index: self.index_of(f),
                size: f.size.min(u32::MAX as u64) as u32,
                name: f.name.to_string(),
                sha1: None,
            })
            .collect();
        let hit = QueryHit {
            port: self.config.listen_port,
            // The advertised IP is the *locally perceived* one: NATed hosts
            // leak RFC 1918 addresses here (the paper's source artifact).
            ip: ctx.local_addr().ip,
            speed: 350,
            results,
            vendor: *b"LIME",
            flags: QhdFlags::new()
                .with(QHD_PUSH, is_nat)
                .with(QHD_UPLOADED, true),
            ggep: Vec::new(),
            servent_guid: self.guid,
        };
        let mut wire = Vec::new();
        encode_message(
            header.guid,
            MsgType::QueryHit,
            header.hops.saturating_add(2).max(3),
            0,
            &hit.encode(),
            &mut wire,
        );
        // Send back along the path the query came from; for our own query
        // (route None) nothing to do.
        if let Some(Some(back)) = self.query_routes.get(&header.guid) {
            ctx.send(*back, &wire);
        }
    }

    /// The stable HTTP index for a shared file.
    fn index_of(&self, f: &SharedFile) -> u32 {
        if let ContentRef::Malware { family, size_idx } = f.content {
            // Echo responses aren't in `files()`; give every malware
            // response the stateless index encoding.
            if !self.library.files().iter().any(|s| s == f) {
                return ECHO_INDEX_BASE + (family.0 as u32) * 16 + size_idx as u32;
            }
        }
        self.library
            .files()
            .iter()
            .position(|s| s == f)
            .map(|p| p as u32)
            .unwrap_or(u32::MAX)
    }

    /// Resolves an HTTP index back to content.
    fn resolve_index(&self, index: u32) -> Option<(String, ContentRef)> {
        if index >= ECHO_INDEX_BASE {
            let rel = index - ECHO_INDEX_BASE;
            let family = p2pmal_corpus::FamilyId((rel / 16) as u16);
            let size_idx = (rel % 16) as u8;
            // Only serve families actually resident on this host.
            if !self.library.infections().contains(&family) {
                return None;
            }
            if (family.0 as usize) >= self.world.roster.len() {
                return None;
            }
            let fam = self.world.roster.get(family);
            if size_idx as usize >= fam.sizes.len() {
                return None;
            }
            return Some((
                format!("{}.exe", fam.name.to_ascii_lowercase()),
                ContentRef::Malware { family, size_idx },
            ));
        }
        self.library
            .files()
            .get(index as usize)
            .map(|f| (f.name.to_string(), f.content))
    }

    fn handle_query_hit(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        header: Header,
        payload: &[u8],
    ) {
        let Ok(hit) = QueryHit::parse(payload) else {
            self.stats.bad_messages += 1;
            return;
        };
        self.remember_push_route(hit.servent_guid, conn);
        match self.query_routes.get(&header.guid) {
            Some(None) => {
                // Answers our own query.
                self.stats.hits_received += 1;
                let at = ctx.now();
                self.emit(ServentEvent::QueryHit {
                    at,
                    query_guid: header.guid,
                    hit,
                });
            }
            Some(Some(back)) => {
                self.stats.hits_routed += 1;
                let back = *back;
                if let Some(fwd) = header.hop() {
                    let mut wire = Vec::new();
                    encode_message(
                        fwd.guid,
                        MsgType::QueryHit,
                        fwd.ttl,
                        fwd.hops,
                        payload,
                        &mut wire,
                    );
                    ctx.send(back, &wire);
                }
            }
            None => { /* route expired: drop silently, like real servents */ }
        }
    }

    fn handle_push(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId, header: Header, payload: &[u8]) {
        let Ok(push) = Push::parse(payload) else {
            self.stats.bad_messages += 1;
            return;
        };
        if push.servent_guid == self.guid {
            // We are the target: dial back and offer the file.
            self.stats.pushes_served += 1;
            let Some((name, _)) = self.resolve_index(push.index) else {
                return;
            };
            let conn = ctx.connect(HostAddr::new(push.ip, push.port));
            self.conns.insert(
                conn,
                ConnKind::PushUpload(PushUploadConn {
                    index: push.index,
                    name,
                    reader: RequestReader::new(),
                }),
            );
            return;
        }
        // Route toward the target servent.
        if let Some(&next) = self.push_routes.get(&push.servent_guid) {
            if let Some(fwd) = header.hop() {
                self.stats.pushes_routed += 1;
                let mut wire = Vec::new();
                encode_message(
                    fwd.guid,
                    MsgType::Push,
                    fwd.ttl,
                    fwd.hops,
                    payload,
                    &mut wire,
                );
                ctx.send(next, &wire);
            }
        }
    }

    fn handle_route(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId, payload: &[u8]) {
        let Ok(msg) = RouteMsg::parse(payload) else {
            self.stats.bad_messages += 1;
            return;
        };
        if let Some(ConnKind::Peer(pc)) = self.conns.get_mut(&conn) {
            if pc.qrp.apply(&msg).is_err() {
                self.stats.bad_messages += 1;
            }
        }
    }

    // -- transfer plumbing ---------------------------------------------------

    fn serve_request(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, req: &HttpRequest) {
        let content = match &req.target {
            RequestTarget::ByIndex { index, .. } => self.resolve_index(*index),
            RequestTarget::ByUrn(digest) => self.library.files().iter().find_map(|f| {
                let h =
                    self.world
                        .store
                        .sha1_of(f.content, &self.world.catalog, &self.world.roster);
                (h == *digest).then(|| (f.name.to_string(), f.content))
            }),
        };
        match content {
            Some((_name, r)) => {
                self.stats.uploads_served += 1;
                let body = self.world.payload_of(r);
                let mut wire = encode_response_ok(&self.config.user_agent, body.len());
                wire.extend_from_slice(&body);
                ctx.send(conn, &wire);
            }
            None => {
                ctx.send(
                    conn,
                    &encode_response_err(&self.config.user_agent, 404, "Not Found"),
                );
            }
        }
    }

    fn finish_download(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: u64,
        result: Result<Vec<u8>, DownloadError>,
    ) {
        // Remove all state referring to this download.
        if let Some(conn) = self.active_downloads.remove(&id) {
            self.conns.insert(conn, ConnKind::Dead);
            ctx.close(conn);
        }
        self.pending_pushes.retain(|_, p| p.id != id);
        self.direct_requests.remove(&id);
        match &result {
            Ok(_) => self.stats.downloads_ok += 1,
            Err(_) => self.stats.downloads_failed += 1,
        }
        let at = ctx.now();
        self.emit(ServentEvent::DownloadDone(DownloadOutcome {
            id,
            at,
            result,
        }));
    }

    fn drop_conn(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.outbound_targets.remove(&conn);
        if let Some(ConnKind::Download(d)) = self.conns.insert(conn, ConnKind::Dead) {
            self.active_downloads.remove(&d.id);
            self.finish_download(ctx, d.id, Err(DownloadError::Protocol("dropped".into())));
        }
        ctx.close(conn);
    }

    /// Handles bytes on an inbound connection whose protocol is unknown.
    fn sniff(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let buf = {
            let Some(ConnKind::SniffIn(buf)) = self.conns.get_mut(&conn) else {
                return;
            };
            buf.extend_from_slice(data);
            if buf.len() < 4 && !buf.starts_with(b"GIV") {
                return; // not enough to classify yet
            }
            std::mem::take(buf)
        };
        if buf.starts_with(b"GNUTELLA") || b"GNUTELLA".starts_with(&buf[..buf.len().min(8)]) {
            let mut resp = Responder::new(self.handshake_config(ctx));
            self.conns.remove(&conn);
            self.feed_responder(ctx, conn, &mut resp, &buf);
            // feed_responder installs Peer/Dead itself when the handshake
            // resolved; otherwise keep handshaking.
            self.conns
                .entry_or_insert_with(conn, || ConnKind::HsIn(resp));
            return;
        }
        if buf.starts_with(b"GET ") || buf.starts_with(b"HEAD") {
            let mut reader = RequestReader::new();
            reader.push(&buf);
            self.conns.insert(conn, ConnKind::Upload(reader));
            self.pump_upload(ctx, conn);
            return;
        }
        if buf.starts_with(b"GIV") {
            match parse_giv(&buf) {
                Ok(Some((giv, used))) => {
                    self.on_giv(ctx, conn, giv, buf[used..].to_vec());
                }
                Ok(None) => {
                    // keep sniffing; restore buffer
                    self.conns.insert(conn, ConnKind::SniffIn(buf));
                }
                Err(_) => self.drop_conn(ctx, conn),
            }
            return;
        }
        // Unknown protocol.
        self.drop_conn(ctx, conn);
    }

    /// An inbound GIV matched against our pending pushes becomes the
    /// transfer connection: send the GET on it.
    fn on_giv(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, giv: Giv, leftover: Vec<u8>) {
        let key = (giv.servent_guid, giv.index);
        let Some(pending) = self.pending_pushes.remove(&key) else {
            self.drop_conn(ctx, conn);
            return;
        };
        let mut reader = ResponseReader::new(self.config.max_download_bytes);
        reader.push(&leftover);
        self.active_downloads.insert(pending.id, conn);
        self.conns.insert(
            conn,
            ConnKind::Download(DownloadConn {
                id: pending.id,
                reader,
            }),
        );
        let target = RequestTarget::ByIndex {
            index: pending.request.index,
            name: pending.request.name.clone(),
        };
        ctx.send(conn, &encode_request(&target, &self.config.user_agent));
    }

    fn pump_upload(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let req = {
            let Some(ConnKind::Upload(reader)) = self.conns.get_mut(&conn) else {
                return;
            };
            match reader.request() {
                Ok(Some(r)) => r,
                Ok(None) => return,
                Err(_) => {
                    self.drop_conn(ctx, conn);
                    return;
                }
            }
        };
        self.serve_request(ctx, conn, &req);
    }

    fn pump_download(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let (id, outcome) = {
            let Some(ConnKind::Download(d)) = self.conns.get_mut(&conn) else {
                return;
            };
            d.reader.push(data);
            match d.reader.response() {
                Ok(Some(resp)) if resp.status == 200 => (d.id, Ok(resp.body)),
                Ok(Some(resp)) => (d.id, Err(DownloadError::Http(resp.status))),
                Ok(None) => return,
                Err(e) => (d.id, Err(DownloadError::Protocol(e.to_string()))),
            }
        };
        self.finish_download(ctx, id, outcome);
    }
}

impl Servent {
    fn feed_responder(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        resp: &mut Responder,
        data: &[u8],
    ) {
        match resp.on_data(data) {
            Ok(RespEvent::NeedMore) => {}
            Ok(RespEvent::Decide { peer }) => {
                let accept = match self.config.role {
                    Role::Leaf => false,
                    Role::Ultrapeer => {
                        if peer.ultrapeer {
                            true // UP↔UP always welcome up to taste
                        } else {
                            let leaves = self
                                .conns
                                .values()
                                .filter(|k| matches!(k, ConnKind::Peer(p) if !p.ultrapeer))
                                .count();
                            leaves < self.config.max_leaf_slots
                        }
                    }
                };
                if accept {
                    let reply = resp.admit(Admission::Accept);
                    ctx.send(conn, &reply);
                    // Await the final ack; stay in HsIn. Stash peer info by
                    // re-issuing Decide later via Established.
                } else {
                    let hosts: Vec<HostAddr> =
                        self.host_cache.iter().rev().take(5).copied().collect();
                    let reply = resp.admit(Admission::Reject(hosts));
                    ctx.send(conn, &reply);
                    self.drop_conn(ctx, conn);
                }
            }
            Ok(RespEvent::Established { peer, leftover }) => {
                self.on_peer_established(ctx, conn, peer.ultrapeer, true, leftover);
            }
            Err(_) => self.drop_conn(ctx, conn),
        }
    }
}

/// A QRP table with every slot present (worm saturation). Its wire form is
/// identical to the receiver-built saturated table used previously (all
/// entries 1, so every delta is `-(infinity - 1)`).
fn saturated_table() -> QrpTable {
    QrpTable::saturated(crate::qrp::DEFAULT_LOG2_SIZE, crate::qrp::DEFAULT_INFINITY)
}

impl App for Servent {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn memory_estimate(&self) -> u64 {
        self.heap_bytes()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.guid = Guid::random(ctx.rng());
        self.started = true;
        let boot = self.config.bootstrap.clone();
        self.add_hosts(boot.iter().copied());
        self.maintain_connectivity(ctx);
        ctx.set_timer(self.config.tick, TIMER_MAINTENANCE);
        if let Some(iv) = self.config.auto_query {
            // Staggered first query to avoid thundering herds.
            let jitter = SimDuration::from_micros(ctx.rng().next_u64() % iv.as_micros().max(1));
            ctx.set_timer(jitter, TIMER_AUTO_QUERY);
        }
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, dir: Direction, _peer: HostAddr) {
        match dir {
            Direction::Inbound => {
                self.conns.insert(conn, ConnKind::SniffIn(Vec::new()));
            }
            Direction::Outbound => match self.conns.get(&conn) {
                Some(ConnKind::HsOut(init)) => {
                    let greeting = init.greeting();
                    ctx.send(conn, &greeting);
                }
                Some(ConnKind::Download(d)) => {
                    // Direct download: the dial completed; send the GET.
                    let id = d.id;
                    if let Some(request) = self.direct_requests.remove(&id) {
                        let target = RequestTarget::ByIndex {
                            index: request.index,
                            name: request.name,
                        };
                        ctx.send(conn, &encode_request(&target, &self.config.user_agent));
                    }
                }
                Some(ConnKind::PushUpload(pu)) => {
                    let giv = Giv {
                        index: pu.index,
                        servent_guid: self.guid,
                        name: pu.name.clone(),
                    };
                    ctx.send(conn, &encode_giv(&giv));
                }
                _ => {}
            },
        }
    }

    fn on_connect_failed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.outbound_targets.remove(&conn);
        match self.conns.remove(&conn) {
            Some(ConnKind::Download(d)) => {
                self.active_downloads.remove(&d.id);
                self.finish_download(ctx, d.id, Err(DownloadError::ConnectFailed));
            }
            Some(ConnKind::HsOut(_)) => {
                self.maintain_connectivity(ctx);
            }
            _ => {}
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        enum Route {
            HsOut,
            HsIn,
            Sniff,
            Peer,
            Download,
            Upload,
            PushUpload,
            Dead,
        }
        let route = match self.conns.get(&conn) {
            Some(ConnKind::HsOut(_)) => Route::HsOut,
            Some(ConnKind::HsIn(_)) => Route::HsIn,
            Some(ConnKind::SniffIn(_)) => Route::Sniff,
            Some(ConnKind::Peer(_)) => Route::Peer,
            Some(ConnKind::Download(_)) => Route::Download,
            Some(ConnKind::Upload(_)) => Route::Upload,
            Some(ConnKind::PushUpload(_)) => Route::PushUpload,
            Some(ConnKind::Dead) | None => Route::Dead,
        };
        match route {
            Route::HsOut => {
                let Some(ConnKind::HsOut(init)) = self.conns.get_mut(&conn) else {
                    return;
                };
                match init.on_data(data) {
                    Ok(HsEvent::NeedMore) => {}
                    Ok(HsEvent::Established {
                        peer,
                        send,
                        leftover,
                    }) => {
                        ctx.send(conn, &send);
                        self.on_peer_established(ctx, conn, peer.ultrapeer, false, leftover);
                    }
                    Ok(HsEvent::Rejected { try_hosts, .. }) => {
                        self.add_hosts(try_hosts);
                        self.drop_conn(ctx, conn);
                        // No immediate retry: rejection means slots are
                        // scarce; the maintenance tick retries with the
                        // freshly learned X-Try hosts. An immediate re-dial
                        // here degenerates into a rejection hot-loop when
                        // the network is at capacity.
                    }
                    Err(_) => self.drop_conn(ctx, conn),
                }
            }
            Route::HsIn => {
                let Some(ConnKind::HsIn(mut resp)) = self.conns.remove(&conn) else {
                    return;
                };
                self.feed_responder(ctx, conn, &mut resp, data);
                // feed_responder may have replaced the entry (Peer/Dead);
                // only restore HsIn while still handshaking.
                self.conns
                    .entry_or_insert_with(conn, || ConnKind::HsIn(resp));
            }
            Route::Sniff => self.sniff(ctx, conn, data),
            Route::Peer => {
                if let Some(ConnKind::Peer(pc)) = self.conns.get_mut(&conn) {
                    pc.reader.push(data);
                }
                self.pump_peer(ctx, conn);
            }
            Route::Download => self.pump_download(ctx, conn, data),
            Route::Upload => {
                if let Some(ConnKind::Upload(reader)) = self.conns.get_mut(&conn) {
                    reader.push(data);
                }
                self.pump_upload(ctx, conn);
            }
            Route::PushUpload => {
                let req = {
                    let Some(ConnKind::PushUpload(pu)) = self.conns.get_mut(&conn) else {
                        return;
                    };
                    pu.reader.push(data);
                    match pu.reader.request() {
                        Ok(Some(r)) => r,
                        Ok(None) => return,
                        Err(_) => {
                            self.drop_conn(ctx, conn);
                            return;
                        }
                    }
                };
                self.serve_request(ctx, conn, &req);
            }
            Route::Dead => {}
        }
    }

    fn on_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.outbound_targets.remove(&conn);
        match self.conns.remove(&conn) {
            Some(ConnKind::Peer(_)) => {
                self.emit(ServentEvent::PeerDown { conn });
                self.maintain_connectivity(ctx);
            }
            Some(ConnKind::Download(d)) => {
                self.active_downloads.remove(&d.id);
                self.finish_download(
                    ctx,
                    d.id,
                    Err(DownloadError::Protocol(
                        "connection closed mid-transfer".into(),
                    )),
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_MAINTENANCE {
            self.maintain_connectivity(ctx);
            // Refresh the host cache occasionally.
            let mut peers: Vec<ConnId> = self
                .conns
                .iter()
                .filter(|(_, k)| matches!(k, ConnKind::Peer(_)))
                .map(|(&c, _)| c)
                .collect();
            // Sorted so the RNG pick below lands on the same peer no matter
            // how the conns map happens to hash this process.
            peers.sort_unstable();
            if !peers.is_empty() && ctx.rng().next_u64() % 6 == 0 {
                let pick = peers[(ctx.rng().next_u64() % peers.len() as u64) as usize];
                self.send_ping(ctx, pick);
            }
            // Adaptive cadence: tick fast while still hunting for peers,
            // slowly once the overlay is stable (drops re-arm connectivity
            // immediately via `on_closed`). Month-scale runs would
            // otherwise spend most of their events on idle ticks.
            let stable = self.peer_count() >= self.config.target_degree.div_ceil(2).max(1);
            let next = if stable {
                SimDuration::from_micros(self.config.tick.as_micros() * 30)
            } else {
                self.config.tick
            };
            ctx.set_timer(next, TIMER_MAINTENANCE);
        } else if token == TIMER_AUTO_QUERY {
            if let Some(iv) = self.config.auto_query {
                let q = self.world.catalog.sample_query(ctx.rng());
                self.search(ctx, &q);
                ctx.set_timer(iv, TIMER_AUTO_QUERY);
            }
        } else if token & TIMER_DL_BASE != 0 {
            let id = token & (TIMER_DL_BASE - 1);
            let still_pending = self.active_downloads.contains_key(&id)
                || self.pending_pushes.values().any(|p| p.id == id);
            if still_pending {
                self.finish_download(ctx, id, Err(DownloadError::Timeout));
            }
        }
    }
}

#[cfg(test)]
mod tests;
