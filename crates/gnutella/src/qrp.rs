//! QRP — the Query Routing Protocol.
//!
//! Leaves summarize their shared-file keywords into a hash table and send it
//! to their ultrapeers as ROUTE_TABLE_UPDATE (type 0x30) RESET + PATCH
//! messages. An ultrapeer then forwards a last-hop query to a leaf only when
//! every keyword of the query hashes into the leaf's table — sparing leaves
//! almost all non-matching traffic.
//!
//! The hash is the canonical QRP multiplicative hash (Rohrs' spec, as
//! implemented by LimeWire): lower-case the word, XOR its bytes into a
//! little-endian accumulator, multiply by 0x4F1BBCDC and keep the top
//! `bits`. Tables here use 8-bit patch entries and optional raw-DEFLATE
//! patch compression (the giFT/LimeWire lineage used zlib; raw DEFLATE
//! preserves the code path with our from-scratch inflater).

use p2pmal_archive::{deflate, inflate};
use std::fmt;

/// Default table size: 2^16 slots, LimeWire's default.
pub const DEFAULT_LOG2_SIZE: u8 = 16;
/// The "infinity" TTL value marking an absent keyword.
pub const DEFAULT_INFINITY: u8 = 7;

/// The size-independent full-width form of [`qrp_hash`]: hash a word once,
/// then derive any table's slot as `h >> (64 - log2_size)`. This is what
/// lets an ultrapeer hash a query's keywords once and test them against
/// every leaf table instead of re-hashing per leaf.
pub fn qrp_hash_full(word: &str) -> u64 {
    let mut xor: u32 = 0;
    let mut j = 0u32;
    for b in word.bytes() {
        let b = b.to_ascii_lowercase() as u32;
        xor ^= b << (j * 8);
        j = (j + 1) & 3;
    }
    (xor as u64).wrapping_mul(0x4F1B_BCDC) << 32
}

/// The canonical QRP hash of `word` into `bits` bits.
pub fn qrp_hash(word: &str, bits: u8) -> u32 {
    (qrp_hash_full(word) >> (64 - bits as u64)) as u32
}

/// Extracts the keywords of a filename / query for QRP purposes: maximal
/// alphanumeric runs of length >= 3, lower-cased.
pub fn keywords(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| w.len() >= 3)
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

/// A query routing table: one entry per hash slot; an entry strictly below
/// `infinity` means "keyword present".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QrpTable {
    log2_size: u8,
    infinity: u8,
    entries: Vec<u8>,
}

impl QrpTable {
    pub fn new(log2_size: u8, infinity: u8) -> Self {
        assert!((8..=24).contains(&log2_size), "unreasonable QRP table size");
        assert!(infinity >= 1);
        QrpTable {
            log2_size,
            infinity,
            entries: vec![infinity; 1usize << log2_size],
        }
    }

    /// LimeWire-default table.
    pub fn default_table() -> Self {
        Self::new(DEFAULT_LOG2_SIZE, DEFAULT_INFINITY)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        false // size is fixed at construction
    }

    pub fn log2_size(&self) -> u8 {
        self.log2_size
    }

    pub fn infinity(&self) -> u8 {
        self.infinity
    }

    /// Number of present slots (diagnostics).
    pub fn population(&self) -> usize {
        self.entries.iter().filter(|&&e| e < self.infinity).count()
    }

    /// Heap bytes held by this table (memory-accounting diagnostics).
    pub fn heap_bytes(&self) -> u64 {
        self.entries.capacity() as u64
    }

    /// Marks every keyword of `name` present (entry value 1 — directly
    /// shared).
    pub fn insert_name(&mut self, name: &str) {
        for w in keywords(name) {
            let slot = qrp_hash(&w, self.log2_size) as usize;
            self.entries[slot] = 1;
        }
    }

    /// True when every keyword of `query` hashes to a present slot — the
    /// last-hop forwarding predicate. Queries with no >=3-char keyword are
    /// conservatively forwarded (rare, and real ultrapeers did the same).
    pub fn might_match(&self, query: &str) -> bool {
        let kws = keywords(query);
        if kws.is_empty() {
            return true;
        }
        kws.iter().all(|w| {
            let slot = qrp_hash(w, self.log2_size) as usize;
            self.entries[slot] < self.infinity
        })
    }

    /// [`QrpTable::might_match`] for keywords hashed once up front with
    /// [`qrp_hash_full`]. An empty slice (no >=3-char keyword) forwards
    /// conservatively, matching `might_match`.
    pub fn might_match_hashes(&self, hashes: &[u64]) -> bool {
        hashes.iter().all(|&h| {
            let slot = (h >> (64 - self.log2_size as u64)) as usize;
            self.entries[slot] < self.infinity
        })
    }

    /// A table with every slot present (worm saturation): each entry is 1,
    /// exactly what a full table of `-(infinity - 1)` deltas patches to, so
    /// its wire form is identical to one built through a receiver.
    pub fn saturated(log2_size: u8, infinity: u8) -> Self {
        let mut t = Self::new(log2_size, infinity);
        t.entries.fill(1);
        t
    }

    /// Builds the RESET + PATCH message sequence that transmits this table,
    /// chunking patch data into `chunk` bytes per message.
    pub fn to_messages(&self, chunk: usize, compress: bool) -> Vec<RouteMsg> {
        assert!(chunk > 0);
        // seq_no/seq_count are u8 on the wire: never emit more than 255
        // patches, whatever chunk size the caller asked for.
        let chunk = chunk.max(self.entries.len().div_ceil(255));
        let mut msgs = vec![RouteMsg::Reset {
            table_len: self.entries.len() as u32,
            infinity: self.infinity,
        }];
        // Patch values are deltas from a fresh (all-infinity) table.
        let deltas: Vec<u8> = self
            .entries
            .iter()
            .map(|&e| (e as i16 - self.infinity as i16) as i8 as u8)
            .collect();
        let (payloads, compressor) = if compress {
            (vec![deflate(&deltas)], Compressor::Deflate)
        } else {
            (
                deltas.chunks(chunk).map(|c| c.to_vec()).collect(),
                Compressor::None,
            )
        };
        let count = payloads.len() as u8;
        for (i, data) in payloads.into_iter().enumerate() {
            msgs.push(RouteMsg::Patch {
                seq_no: i as u8 + 1,
                seq_count: count,
                compressor,
                entry_bits: 8,
                data,
            });
        }
        msgs
    }
}

/// A received routing table compacted to one *present* bit per slot — the
/// only thing the last-hop forwarding predicate ever reads. An ultrapeer
/// holds one of these per leaf connection, so the 8x compaction versus the
/// full 8-bit entry table (8 KiB versus 64 KiB at the default 2^16 size)
/// is the dominant memory lever at mega populations.
///
/// Exactness: within one RESET cycle the receiver's patch offset strictly
/// advances, so every slot is patched at most once. A slot starts at
/// `infinity` and a single 8-bit delta `d` leaves it at
/// `clamp(infinity + d, 0, 255)`, which is below `infinity` iff `d < 0`.
/// The bit therefore reproduces the full table's `entry < infinity`
/// predicate bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QrpFilter {
    log2_size: u8,
    bits: Vec<u64>,
}

impl QrpFilter {
    fn new(log2_size: u8) -> Self {
        QrpFilter {
            log2_size,
            bits: vec![0u64; (1usize << log2_size) / 64],
        }
    }

    pub fn log2_size(&self) -> u8 {
        self.log2_size
    }

    /// Number of slots (not bytes) in the underlying table.
    pub fn len(&self) -> usize {
        1usize << self.log2_size
    }

    pub fn is_empty(&self) -> bool {
        false // size is fixed at construction
    }

    /// Number of present slots (diagnostics).
    pub fn population(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes held by this filter (memory-accounting diagnostics).
    pub fn heap_bytes(&self) -> u64 {
        (self.bits.capacity() * 8) as u64
    }

    #[inline]
    fn set(&mut self, slot: usize, present: bool) {
        let (w, b) = (slot / 64, slot % 64);
        if present {
            self.bits[w] |= 1u64 << b;
        } else {
            self.bits[w] &= !(1u64 << b);
        }
    }

    #[inline]
    fn present(&self, slot: usize) -> bool {
        self.bits[slot / 64] >> (slot % 64) & 1 != 0
    }

    /// True when every keyword of `query` hashes to a present slot — the
    /// last-hop forwarding predicate, identical to
    /// [`QrpTable::might_match`] on the transmitted table.
    pub fn might_match(&self, query: &str) -> bool {
        let kws = keywords(query);
        if kws.is_empty() {
            return true;
        }
        kws.iter()
            .all(|w| self.present(qrp_hash(w, self.log2_size) as usize))
    }

    /// [`QrpFilter::might_match`] for keywords hashed once up front with
    /// [`qrp_hash_full`]. An empty slice forwards conservatively.
    pub fn might_match_hashes(&self, hashes: &[u64]) -> bool {
        hashes
            .iter()
            .all(|&h| self.present((h >> (64 - self.log2_size as u64)) as usize))
    }
}

/// A receiver-side filter under reconstruction from RESET/PATCH messages.
#[derive(Debug, Clone, Default)]
pub struct QrpReceiver {
    filter: Option<QrpFilter>,
    next_offset: usize,
}

impl QrpReceiver {
    pub fn new() -> Self {
        Self::default()
    }

    /// The fully or partially patched filter, if a RESET has been seen.
    pub fn filter(&self) -> Option<&QrpFilter> {
        self.filter.as_ref()
    }

    /// Heap bytes held by the filter under reconstruction, if any.
    pub fn heap_bytes(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.heap_bytes())
    }

    /// Applies one route message. Errors are protocol violations.
    pub fn apply(&mut self, msg: &RouteMsg) -> Result<(), QrpError> {
        match msg {
            RouteMsg::Reset {
                table_len,
                infinity: _,
            } => {
                let log2 = (*table_len as f64).log2();
                if log2.fract() != 0.0 || !(8.0..=24.0).contains(&log2) {
                    return Err(QrpError::BadTableLen(*table_len));
                }
                self.filter = Some(QrpFilter::new(log2 as u8));
                self.next_offset = 0;
            }
            RouteMsg::Patch {
                compressor,
                entry_bits,
                data,
                ..
            } => {
                let filter = self.filter.as_mut().ok_or(QrpError::PatchBeforeReset)?;
                if *entry_bits != 8 {
                    return Err(QrpError::UnsupportedEntryBits(*entry_bits));
                }
                let raw = match compressor {
                    Compressor::None => data.clone(),
                    Compressor::Deflate => {
                        inflate(data, filter.len() + 1024).map_err(|_| QrpError::BadCompression)?
                    }
                };
                if self.next_offset + raw.len() > filter.len() {
                    return Err(QrpError::PatchOverrun);
                }
                for (i, &d) in raw.iter().enumerate() {
                    // See the QrpFilter doc: one patch per slot per cycle,
                    // so `delta < 0` is exactly `entry < infinity`.
                    filter.set(self.next_offset + i, (d as i8) < 0);
                }
                self.next_offset += raw.len();
            }
        }
        Ok(())
    }
}

/// Patch compressor ids (wire values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compressor {
    None,
    /// Raw RFC 1951 DEFLATE (stand-in for the zlib the era's servents used).
    Deflate,
}

/// A ROUTE_TABLE_UPDATE message (payload of descriptor type 0x30).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteMsg {
    Reset {
        table_len: u32,
        infinity: u8,
    },
    Patch {
        seq_no: u8,
        seq_count: u8,
        compressor: Compressor,
        entry_bits: u8,
        data: Vec<u8>,
    },
}

/// QRP errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QrpError {
    Truncated,
    BadVariant(u8),
    BadTableLen(u32),
    PatchBeforeReset,
    UnsupportedEntryBits(u8),
    UnsupportedCompressor(u8),
    BadCompression,
    PatchOverrun,
}

impl fmt::Display for QrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrpError::Truncated => write!(f, "truncated route message"),
            QrpError::BadVariant(v) => write!(f, "unknown route variant {v}"),
            QrpError::BadTableLen(n) => write!(f, "table length {n} is not a sane power of two"),
            QrpError::PatchBeforeReset => write!(f, "PATCH before RESET"),
            QrpError::UnsupportedEntryBits(b) => write!(f, "unsupported entry bits {b}"),
            QrpError::UnsupportedCompressor(c) => write!(f, "unsupported compressor {c}"),
            QrpError::BadCompression => write!(f, "patch decompression failed"),
            QrpError::PatchOverrun => write!(f, "patch data overruns table"),
        }
    }
}

impl std::error::Error for QrpError {}

impl RouteMsg {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            RouteMsg::Reset {
                table_len,
                infinity,
            } => {
                let mut out = vec![0x00];
                out.extend_from_slice(&table_len.to_le_bytes());
                out.push(*infinity);
                out
            }
            RouteMsg::Patch {
                seq_no,
                seq_count,
                compressor,
                entry_bits,
                data,
            } => {
                let mut out = vec![0x01, *seq_no, *seq_count];
                out.push(match compressor {
                    Compressor::None => 0x00,
                    Compressor::Deflate => 0x01,
                });
                out.push(*entry_bits);
                out.extend_from_slice(data);
                out
            }
        }
    }

    pub fn parse(data: &[u8]) -> Result<Self, QrpError> {
        match data.first() {
            None => Err(QrpError::Truncated),
            Some(0x00) => {
                if data.len() < 6 {
                    return Err(QrpError::Truncated);
                }
                let table_len = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
                Ok(RouteMsg::Reset {
                    table_len,
                    infinity: data[5],
                })
            }
            Some(0x01) => {
                if data.len() < 5 {
                    return Err(QrpError::Truncated);
                }
                let compressor = match data[3] {
                    0x00 => Compressor::None,
                    0x01 => Compressor::Deflate,
                    other => return Err(QrpError::UnsupportedCompressor(other)),
                };
                Ok(RouteMsg::Patch {
                    seq_no: data[1],
                    seq_count: data[2],
                    compressor,
                    entry_bits: data[4],
                    data: data[5..].to_vec(),
                })
            }
            Some(&v) => Err(QrpError::BadVariant(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_case_insensitive_and_in_range() {
        for bits in [8u8, 13, 16] {
            for w in ["hello", "HELLO", "HeLLo"] {
                let h = qrp_hash(w, bits);
                assert_eq!(h, qrp_hash("hello", bits));
                assert!(h < (1 << bits));
            }
        }
        assert_ne!(qrp_hash("hello", 16), qrp_hash("world", 16));
    }

    #[test]
    fn keyword_extraction() {
        assert_eq!(
            keywords("crimson_horizon-remix.mp3"),
            vec!["crimson", "horizon", "remix", "mp3"]
        );
        assert_eq!(keywords("a bb ccc"), vec!["ccc"], "short words dropped");
        assert!(keywords("--//--").is_empty());
    }

    #[test]
    fn insert_and_match() {
        let mut t = QrpTable::new(12, 7);
        t.insert_name("crimson_horizon_remix.mp3");
        assert!(t.might_match("crimson horizon"));
        assert!(t.might_match("CRIMSON"));
        assert!(!t.might_match("crimson missingword"));
        assert!(
            t.might_match("zz"),
            "keyword-free queries pass conservatively"
        );
        assert!(t.population() >= 3);
    }

    #[test]
    fn might_match_hashes_agrees_with_might_match() {
        let mut t = QrpTable::new(12, 7);
        t.insert_name("crimson_horizon_remix.mp3");
        for q in [
            "crimson horizon",
            "CRIMSON",
            "crimson missingword",
            "zz",
            "remix mp3",
        ] {
            let hashes: Vec<u64> = keywords(q).iter().map(|w| qrp_hash_full(w)).collect();
            assert_eq!(
                t.might_match_hashes(&hashes),
                t.might_match(q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn full_hash_derives_sized_hash() {
        for w in ["hello", "WORLD", "a", "crimson_horizon"] {
            for bits in [8u8, 13, 16, 24] {
                assert_eq!(
                    (qrp_hash_full(w) >> (64 - bits as u64)) as u32,
                    qrp_hash(w, bits)
                );
            }
        }
    }

    #[test]
    fn route_msg_roundtrip() {
        let msgs = [
            RouteMsg::Reset {
                table_len: 65536,
                infinity: 7,
            },
            RouteMsg::Patch {
                seq_no: 1,
                seq_count: 2,
                compressor: Compressor::None,
                entry_bits: 8,
                data: vec![0xFA, 0x00, 0x06],
            },
        ];
        for m in msgs {
            assert_eq!(RouteMsg::parse(&m.encode()).unwrap(), m);
        }
        assert_eq!(RouteMsg::parse(&[]), Err(QrpError::Truncated));
        assert_eq!(RouteMsg::parse(&[0x07]), Err(QrpError::BadVariant(0x07)));
    }

    /// The received filter must reproduce the sent table's presence
    /// predicate on every slot.
    fn assert_filter_equals_table(rx: &QrpReceiver, t: &QrpTable) {
        let f = rx.filter().expect("filter built");
        assert_eq!(f.log2_size(), t.log2_size());
        assert_eq!(f.len(), t.len());
        assert_eq!(f.population(), t.population());
        for slot in 0..t.len() {
            assert_eq!(
                f.present(slot),
                t.entries[slot] < t.infinity(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn table_transfer_uncompressed_roundtrip() {
        let mut t = QrpTable::new(10, 7);
        t.insert_name("silver echo serenade");
        t.insert_name("turbo dynamo toolkit");
        let mut rx = QrpReceiver::new();
        for m in t.to_messages(256, false) {
            let wire = m.encode();
            rx.apply(&RouteMsg::parse(&wire).unwrap()).unwrap();
        }
        assert_filter_equals_table(&rx, &t);
    }

    #[test]
    fn table_transfer_deflate_roundtrip() {
        let mut t = QrpTable::new(14, 7);
        for name in ["alpha beta gamma", "delta epsilon", "zeta_eta_theta.exe"] {
            t.insert_name(name);
        }
        let mut rx = QrpReceiver::new();
        let msgs = t.to_messages(4096, true);
        assert_eq!(msgs.len(), 2, "reset + one compressed patch");
        for m in &msgs {
            rx.apply(m).unwrap();
        }
        assert_filter_equals_table(&rx, &t);
        // Compression must actually compress a sparse table.
        if let RouteMsg::Patch { data, .. } = &msgs[1] {
            assert!(data.len() < (1 << 14) / 4, "patch bytes {}", data.len());
        } else {
            panic!("expected patch");
        }
    }

    #[test]
    fn filter_matches_agree_with_table() {
        let mut t = QrpTable::new(12, 7);
        t.insert_name("crimson_horizon_remix.mp3");
        let mut rx = QrpReceiver::new();
        for m in t.to_messages(2048, true) {
            rx.apply(&m).unwrap();
        }
        let f = rx.filter().unwrap();
        for q in [
            "crimson horizon",
            "CRIMSON",
            "crimson missingword",
            "zz",
            "remix mp3",
            "",
        ] {
            assert_eq!(f.might_match(q), t.might_match(q), "query {q:?}");
            let hashes: Vec<u64> = keywords(q).iter().map(|w| qrp_hash_full(w)).collect();
            assert_eq!(
                f.might_match_hashes(&hashes),
                t.might_match_hashes(&hashes),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn filter_is_8x_smaller_than_table() {
        let t = QrpTable::default_table();
        let mut rx = QrpReceiver::new();
        for m in t.to_messages(4096, true) {
            rx.apply(&m).unwrap();
        }
        assert_eq!(rx.heap_bytes() * 8, t.heap_bytes());
    }

    #[test]
    fn saturated_table_is_all_present_and_delta_clean() {
        let t = QrpTable::saturated(10, 7);
        assert_eq!(t.population(), t.len());
        // Its wire form is the same full-table patch of -(infinity - 1)
        // deltas a receiver-built saturated table produced.
        let msgs = t.to_messages(1 << 10, false);
        let RouteMsg::Patch { data, .. } = &msgs[1] else {
            panic!("expected patch");
        };
        assert!(data.iter().all(|&d| d as i8 == -6));
        let mut rx = QrpReceiver::new();
        for m in &msgs {
            rx.apply(m).unwrap();
        }
        assert_eq!(rx.filter().unwrap().population(), t.len());
    }

    #[test]
    fn receiver_rejects_protocol_violations() {
        let mut rx = QrpReceiver::new();
        let patch = RouteMsg::Patch {
            seq_no: 1,
            seq_count: 1,
            compressor: Compressor::None,
            entry_bits: 8,
            data: vec![0; 16],
        };
        assert_eq!(rx.apply(&patch), Err(QrpError::PatchBeforeReset));
        rx.apply(&RouteMsg::Reset {
            table_len: 1000,
            infinity: 7,
        })
        .unwrap_err(); // not a power of two
        rx.apply(&RouteMsg::Reset {
            table_len: 256,
            infinity: 7,
        })
        .unwrap();
        let overrun = RouteMsg::Patch {
            seq_no: 1,
            seq_count: 1,
            compressor: Compressor::None,
            entry_bits: 8,
            data: vec![0; 257],
        };
        assert_eq!(rx.apply(&overrun), Err(QrpError::PatchOverrun));
        let bad_bits = RouteMsg::Patch {
            seq_no: 1,
            seq_count: 1,
            compressor: Compressor::None,
            entry_bits: 4,
            data: vec![0; 8],
        };
        assert_eq!(rx.apply(&bad_bits), Err(QrpError::UnsupportedEntryBits(4)));
    }

    #[test]
    fn patches_accumulate_across_chunks() {
        let mut t = QrpTable::new(10, 7);
        t.insert_name("one two three four five six seven");
        let msgs = t.to_messages(100, false); // many small chunks
        assert!(msgs.len() > 3);
        let mut rx = QrpReceiver::new();
        for m in msgs {
            rx.apply(&m).unwrap();
        }
        assert_filter_equals_table(&rx, &t);
    }

    proptest::proptest! {
        /// Random tables, chunkings and compression modes: the received
        /// filter always reproduces the table's per-slot presence.
        #[test]
        fn prop_filter_equals_table(
            names in proptest::collection::vec("[a-zA-Z0-9_ .]{0,24}", 0..24),
            log2 in 8u8..13,
            chunk in 1usize..600,
            compress in proptest::any::<bool>(),
        ) {
            let mut t = QrpTable::new(log2, 7);
            for n in &names {
                t.insert_name(n);
            }
            let mut rx = QrpReceiver::new();
            for m in t.to_messages(chunk, compress) {
                rx.apply(&RouteMsg::parse(&m.encode()).unwrap()).unwrap();
            }
            let f = rx.filter().unwrap();
            proptest::prop_assert_eq!(f.population(), t.population());
            for slot in 0..t.len() {
                proptest::prop_assert_eq!(f.present(slot), t.entries[slot] < t.infinity());
            }
        }
    }
}
