//! Typed Gnutella payloads: encode/parse for PING, PONG, QUERY, QUERYHIT,
//! PUSH and BYE.
//!
//! Follows the two-level smoltcp pattern: the wire `Header` lives in
//! [`crate::message`]; this module gives each payload a representation
//! struct with `encode()` into bytes and a strict `parse()` that never
//! panics on malformed input.

use crate::ggep::{self, Extension};
use p2pmal_hashes::{base32_decode, base32_encode, Sha1Digest};
use std::fmt;
use std::net::Ipv4Addr;

/// The GEM extension separator used between HUGE/GGEP blocks in query and
/// query-hit extension areas.
const GEM_SEP: u8 = 0x1C;

/// Payload parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    Truncated,
    MissingNul,
    BadUtf8,
    BadUrn,
    BadGgep(String),
    /// Structured trailing garbage, impossible result counts, etc.
    Malformed(&'static str),
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::Truncated => write!(f, "payload truncated"),
            PayloadError::MissingNul => write!(f, "missing NUL terminator"),
            PayloadError::BadUtf8 => write!(f, "invalid UTF-8 string"),
            PayloadError::BadUrn => write!(f, "invalid urn:sha1 extension"),
            PayloadError::BadGgep(e) => write!(f, "bad GGEP block: {e}"),
            PayloadError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for PayloadError {}

/// Cursor over a payload slice with checked reads.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PayloadError> {
        if self.remaining() < n {
            return Err(PayloadError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.take(1)?[0])
    }

    fn u16_le(&mut self) -> Result<u16, PayloadError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_le(&mut self) -> Result<u32, PayloadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn ipv4(&mut self) -> Result<Ipv4Addr, PayloadError> {
        let b = self.take(4)?;
        Ok(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
    }

    /// Reads up to (not including) the next NUL, consuming the NUL.
    fn cstr(&mut self) -> Result<&'a [u8], PayloadError> {
        let rest = &self.data[self.pos..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or(PayloadError::MissingNul)?;
        let s = &rest[..nul];
        self.pos += nul + 1;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }
}

fn utf8(b: &[u8]) -> Result<String, PayloadError> {
    String::from_utf8(b.to_vec()).map_err(|_| PayloadError::BadUtf8)
}

// ---------------------------------------------------------------------------
// PING
// ---------------------------------------------------------------------------

/// A PING payload. Plain pings are empty; ultrapeers may attach GGEP (e.g.
/// `SCP` for "supports crawler pongs").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ping {
    pub ggep: Vec<Extension>,
}

impl Ping {
    pub fn encode(&self) -> Vec<u8> {
        if self.ggep.is_empty() {
            Vec::new()
        } else {
            ggep::encode(&self.ggep)
        }
    }

    pub fn parse(data: &[u8]) -> Result<Self, PayloadError> {
        if data.is_empty() {
            return Ok(Ping::default());
        }
        let (exts, used) = ggep::parse(data).map_err(|e| PayloadError::BadGgep(e.to_string()))?;
        if used != data.len() {
            return Err(PayloadError::Malformed("trailing bytes after PING GGEP"));
        }
        Ok(Ping { ggep: exts })
    }
}

// ---------------------------------------------------------------------------
// PONG
// ---------------------------------------------------------------------------

/// A PONG payload: the classic host advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pong {
    pub port: u16,
    pub ip: Ipv4Addr,
    /// Number of files the host shares.
    pub file_count: u32,
    /// Kilobytes shared.
    pub kbytes: u32,
    pub ggep: Vec<Extension>,
}

impl Pong {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        out.extend_from_slice(&self.port.to_le_bytes());
        out.extend_from_slice(&self.ip.octets());
        out.extend_from_slice(&self.file_count.to_le_bytes());
        out.extend_from_slice(&self.kbytes.to_le_bytes());
        if !self.ggep.is_empty() {
            out.extend_from_slice(&ggep::encode(&self.ggep));
        }
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PayloadError> {
        let mut r = Reader::new(data);
        let port = r.u16_le()?;
        let ip = r.ipv4()?;
        let file_count = r.u32_le()?;
        let kbytes = r.u32_le()?;
        let rest = r.rest();
        let ggep = if rest.is_empty() {
            Vec::new()
        } else {
            let (exts, used) =
                ggep::parse(rest).map_err(|e| PayloadError::BadGgep(e.to_string()))?;
            if used != rest.len() {
                return Err(PayloadError::Malformed("trailing bytes after PONG GGEP"));
            }
            exts
        };
        Ok(Pong {
            port,
            ip,
            file_count,
            kbytes,
            ggep,
        })
    }
}

// ---------------------------------------------------------------------------
// QUERY
// ---------------------------------------------------------------------------

/// Bits in the QUERY min-speed field when interpreted as flags (modern
/// servents set bit 15 to mark the field as a flag set).
pub const QUERY_FLAG_MARKER: u16 = 0x8000;
/// Requester is firewalled.
pub const QUERY_FLAG_FIREWALLED: u16 = 0x4000;
/// Requester wants XML metadata.
pub const QUERY_FLAG_XML: u16 = 0x2000;

/// A QUERY payload: search text plus optional HUGE/GGEP extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    pub min_speed: u16,
    pub text: String,
    /// Requested urn types / exact urns, e.g. `urn:sha1:` (bare request) or
    /// a full `urn:sha1:<base32>` lookup.
    pub urns: Vec<String>,
    pub ggep: Vec<Extension>,
}

impl Query {
    /// A plain keyword query as LimeWire would send it.
    pub fn keyword(text: &str) -> Self {
        Query {
            min_speed: QUERY_FLAG_MARKER | QUERY_FLAG_XML,
            text: text.to_string(),
            urns: vec!["urn:sha1:".to_string()],
            ggep: Vec::new(),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.min_speed.to_le_bytes());
        out.extend_from_slice(self.text.as_bytes());
        out.push(0);
        let mut first = true;
        for urn in &self.urns {
            if !first {
                out.push(GEM_SEP);
            }
            out.extend_from_slice(urn.as_bytes());
            first = false;
        }
        if !self.ggep.is_empty() {
            if !first {
                out.push(GEM_SEP);
            }
            out.extend_from_slice(&ggep::encode(&self.ggep));
        }
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PayloadError> {
        let mut r = Reader::new(data);
        let min_speed = r.u16_le()?;
        let text = utf8(r.cstr()?)?;
        let ext_area = r.rest();
        let (urns, ggep) = parse_gem_extensions(ext_area)?;
        Ok(Query {
            min_speed,
            text,
            urns,
            ggep,
        })
    }
}

/// Splits a GEM extension area (0x1C-separated HUGE strings and GGEP
/// blocks) into urn strings and GGEP extensions.
fn parse_gem_extensions(area: &[u8]) -> Result<(Vec<String>, Vec<Extension>), PayloadError> {
    let mut urns = Vec::new();
    let mut exts = Vec::new();
    let mut pos = 0;
    while pos < area.len() {
        if area[pos] == GEM_SEP {
            pos += 1;
            continue;
        }
        if area[pos] == ggep::GGEP_MAGIC {
            let (mut e, used) =
                ggep::parse(&area[pos..]).map_err(|err| PayloadError::BadGgep(err.to_string()))?;
            exts.append(&mut e);
            pos += used;
            continue;
        }
        // A HUGE string: runs until the next separator or end.
        let end = area[pos..]
            .iter()
            .position(|&b| b == GEM_SEP)
            .map(|i| pos + i)
            .unwrap_or(area.len());
        let s = utf8(&area[pos..end])?;
        if !s.is_empty() {
            urns.push(s);
        }
        pos = end;
    }
    Ok((urns, exts))
}

// ---------------------------------------------------------------------------
// QUERYHIT
// ---------------------------------------------------------------------------

/// One result record inside a QUERYHIT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HitResult {
    /// Host-local file index, echoed back in HTTP `GET /get/<index>/...`.
    pub index: u32,
    /// Exact file size in bytes (u32 per the 2006 wire format).
    pub size: u32,
    pub name: String,
    /// HUGE urn:sha1 digest, if advertised.
    pub sha1: Option<Sha1Digest>,
}

impl HitResult {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.push(0);
        if let Some(d) = &self.sha1 {
            out.extend_from_slice(format!("urn:sha1:{}", base32_encode(&d.0)).as_bytes());
        }
        out.push(0);
    }

    fn parse(r: &mut Reader<'_>) -> Result<Self, PayloadError> {
        let index = r.u32_le()?;
        let size = r.u32_le()?;
        let name = utf8(r.cstr()?)?;
        let ext = r.cstr()?;
        let mut sha1 = None;
        for part in ext.split(|&b| b == GEM_SEP) {
            if part.is_empty() || part[0] == ggep::GGEP_MAGIC {
                continue; // per-result GGEP ignored
            }
            let s = utf8(part)?;
            if let Some(b32) = s.strip_prefix("urn:sha1:") {
                let raw = base32_decode(b32).map_err(|_| PayloadError::BadUrn)?;
                if raw.len() != 20 {
                    return Err(PayloadError::BadUrn);
                }
                let mut d = [0u8; 20];
                d.copy_from_slice(&raw);
                sha1 = Some(Sha1Digest(d));
            }
        }
        Ok(HitResult {
            index,
            size,
            name,
            sha1,
        })
    }
}

/// QHD flags (the EQHD "open data" pair). `mask` says which bits of `flags`
/// are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QhdFlags {
    pub flags: u8,
    pub mask: u8,
}

/// Bit 0: responder is firewalled and needs PUSH.
pub const QHD_PUSH: u8 = 0x01;
/// Bit 2: responder is busy.
pub const QHD_BUSY: u8 = 0x04;
/// Bit 3: responder has actually uploaded before.
pub const QHD_UPLOADED: u8 = 0x08;

impl QhdFlags {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, bit: u8, value: bool) -> Self {
        self.mask |= bit;
        if value {
            self.flags |= bit;
        } else {
            self.flags &= !bit;
        }
        self
    }

    /// Whether `bit` is set *and* meaningful.
    pub fn get(&self, bit: u8) -> Option<bool> {
        if self.mask & bit != 0 {
            Some(self.flags & bit != 0)
        } else {
            None
        }
    }

    /// True when the responder declared it needs PUSH.
    pub fn needs_push(&self) -> bool {
        self.get(QHD_PUSH) == Some(true)
    }
}

/// A QUERYHIT payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHit {
    pub port: u16,
    /// The address the responder *advertises* — for NATed hosts this is an
    /// RFC 1918 address, the artifact behind the paper's 28% result.
    pub ip: Ipv4Addr,
    /// Claimed upload speed in kbit/s.
    pub speed: u32,
    pub results: Vec<HitResult>,
    /// Responder's vendor code, e.g. `LIME`.
    pub vendor: [u8; 4],
    pub flags: QhdFlags,
    /// Private-area GGEP (between QHD and the trailing GUID).
    pub ggep: Vec<Extension>,
    /// The responding servent's GUID — the routing target for PUSH.
    pub servent_guid: crate::guid::Guid,
}

impl QueryHit {
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.results.len() <= 255,
            "QUERYHIT carries at most 255 results"
        );
        let mut out = Vec::new();
        out.push(self.results.len() as u8);
        out.extend_from_slice(&self.port.to_le_bytes());
        out.extend_from_slice(&self.ip.octets());
        out.extend_from_slice(&self.speed.to_le_bytes());
        for res in &self.results {
            res.encode(&mut out);
        }
        out.extend_from_slice(&self.vendor);
        out.push(2); // open data size
        out.push(self.flags.flags);
        out.push(self.flags.mask);
        if !self.ggep.is_empty() {
            out.extend_from_slice(&ggep::encode(&self.ggep));
        }
        out.extend_from_slice(&self.servent_guid.0);
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PayloadError> {
        if data.len() < 16 {
            return Err(PayloadError::Truncated);
        }
        let (body, guid_bytes) = data.split_at(data.len() - 16);
        let servent_guid =
            crate::guid::Guid::from_slice(guid_bytes).expect("split guarantees 16 bytes");
        let mut r = Reader::new(body);
        let count = r.u8()?;
        let port = r.u16_le()?;
        let ip = r.ipv4()?;
        let speed = r.u32_le()?;
        let mut results = Vec::with_capacity(count as usize);
        for _ in 0..count {
            results.push(HitResult::parse(&mut r)?);
        }
        // QHD (required by 2006 servents).
        let vendor_slice = r.take(4)?;
        let mut vendor = [0u8; 4];
        vendor.copy_from_slice(vendor_slice);
        let open_size = r.u8()? as usize;
        if open_size < 2 {
            return Err(PayloadError::Malformed("QHD open data too short"));
        }
        let open = r.take(open_size)?;
        let flags = QhdFlags {
            flags: open[0],
            mask: open[1],
        };
        let private = r.rest();
        let ggep = if private.is_empty() {
            Vec::new()
        } else if private[0] == ggep::GGEP_MAGIC {
            let (exts, _) =
                ggep::parse(private).map_err(|e| PayloadError::BadGgep(e.to_string()))?;
            exts
        } else {
            Vec::new() // unknown vendor private data: tolerated, skipped
        };
        Ok(QueryHit {
            port,
            ip,
            speed,
            results,
            vendor,
            flags,
            ggep,
            servent_guid,
        })
    }
}

// ---------------------------------------------------------------------------
// PUSH
// ---------------------------------------------------------------------------

/// A PUSH request: "open a connection back to me and give me file `index`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Push {
    /// GUID of the servent that must perform the push (from the QUERYHIT).
    pub servent_guid: crate::guid::Guid,
    pub index: u32,
    /// Requester's address the pushed connection should dial.
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl Push {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26);
        out.extend_from_slice(&self.servent_guid.0);
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.ip.octets());
        out.extend_from_slice(&self.port.to_le_bytes());
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PayloadError> {
        let mut r = Reader::new(data);
        let guid_bytes = r.take(16)?;
        let servent_guid = crate::guid::Guid::from_slice(guid_bytes).expect("16 bytes");
        let index = r.u32_le()?;
        let ip = r.ipv4()?;
        let port = r.u16_le()?;
        Ok(Push {
            servent_guid,
            index,
            ip,
            port,
        })
    }
}

// ---------------------------------------------------------------------------
// BYE
// ---------------------------------------------------------------------------

/// A BYE message: a status code and a human-readable reason, sent before an
/// orderly disconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bye {
    pub code: u16,
    pub reason: String,
}

impl Bye {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.code.to_le_bytes());
        out.extend_from_slice(self.reason.as_bytes());
        out.push(0);
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PayloadError> {
        let mut r = Reader::new(data);
        let code = r.u16_le()?;
        let reason = utf8(r.cstr()?)?;
        Ok(Bye { code, reason })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guid::Guid;
    use p2pmal_hashes::sha1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn guid() -> Guid {
        Guid::random(&mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn ping_roundtrip_empty_and_ggep() {
        assert_eq!(
            Ping::parse(&Ping::default().encode()).unwrap(),
            Ping::default()
        );
        let p = Ping {
            ggep: vec![Extension {
                id: "SCP".into(),
                data: vec![1],
            }],
        };
        assert_eq!(Ping::parse(&p.encode()).unwrap(), p);
    }

    #[test]
    fn pong_roundtrip() {
        let p = Pong {
            port: 6346,
            ip: Ipv4Addr::new(10, 1, 2, 3),
            file_count: 420,
            kbytes: 123_456,
            ggep: vec![Extension {
                id: "DU".into(),
                data: vec![0x10, 0x27],
            }],
        };
        assert_eq!(Pong::parse(&p.encode()).unwrap(), p);
    }

    #[test]
    fn pong_rejects_truncation() {
        let p = Pong {
            port: 1,
            ip: Ipv4Addr::new(1, 2, 3, 4),
            file_count: 0,
            kbytes: 0,
            ggep: Vec::new(),
        };
        let raw = p.encode();
        for cut in 0..raw.len() {
            assert!(Pong::parse(&raw[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn query_roundtrip_with_urn_request() {
        let q = Query::keyword("crimson horizon remix");
        let parsed = Query::parse(&q.encode()).unwrap();
        assert_eq!(parsed, q);
        assert_eq!(parsed.text, "crimson horizon remix");
        assert_eq!(parsed.urns, vec!["urn:sha1:".to_string()]);
        assert!(parsed.min_speed & QUERY_FLAG_MARKER != 0);
    }

    #[test]
    fn query_with_exact_urn_and_ggep() {
        let digest = sha1(b"payload");
        let q = Query {
            min_speed: 0,
            text: String::new(),
            urns: vec![format!(
                "urn:sha1:{}",
                p2pmal_hashes::base32_encode(&digest.0)
            )],
            ggep: vec![Extension {
                id: "M".into(),
                data: vec![4],
            }],
        };
        let parsed = Query::parse(&q.encode()).unwrap();
        assert_eq!(parsed.urns, q.urns);
        assert_eq!(parsed.ggep, q.ggep);
    }

    #[test]
    fn query_missing_nul_is_rejected() {
        assert_eq!(
            Query::parse(&[0, 0, b'a', b'b']),
            Err(PayloadError::MissingNul)
        );
    }

    fn sample_hit() -> QueryHit {
        QueryHit {
            port: 6346,
            ip: Ipv4Addr::new(192, 168, 1, 44),
            speed: 350,
            results: vec![
                HitResult {
                    index: 7,
                    size: 58_368,
                    name: "free_music.exe".into(),
                    sha1: Some(sha1(b"malware bytes")),
                },
                HitResult {
                    index: 12,
                    size: 4_111_222,
                    name: "song.mp3".into(),
                    sha1: None,
                },
            ],
            vendor: *b"LIME",
            flags: QhdFlags::new()
                .with(QHD_PUSH, true)
                .with(QHD_UPLOADED, false),
            ggep: Vec::new(),
            servent_guid: guid(),
        }
    }

    #[test]
    fn queryhit_roundtrip() {
        let qh = sample_hit();
        let parsed = QueryHit::parse(&qh.encode()).unwrap();
        assert_eq!(parsed, qh);
        assert!(parsed.flags.needs_push());
        assert_eq!(parsed.flags.get(QHD_UPLOADED), Some(false));
        assert_eq!(
            parsed.flags.get(QHD_BUSY),
            None,
            "unmasked bit is meaningless"
        );
        assert_eq!(parsed.results[0].sha1, Some(sha1(b"malware bytes")));
    }

    #[test]
    fn queryhit_advertised_ip_survives_even_when_private() {
        let qh = sample_hit();
        let parsed = QueryHit::parse(&qh.encode()).unwrap();
        assert_eq!(parsed.ip, Ipv4Addr::new(192, 168, 1, 44));
    }

    #[test]
    fn queryhit_truncations_never_panic() {
        let raw = sample_hit().encode();
        for cut in 0..raw.len() {
            let _ = QueryHit::parse(&raw[..cut]); // must not panic
        }
    }

    #[test]
    fn queryhit_bad_result_count_is_error() {
        let mut raw = sample_hit().encode();
        raw[0] = 200; // claims 200 results, carries 2
        assert!(QueryHit::parse(&raw).is_err());
    }

    #[test]
    fn push_roundtrip() {
        let p = Push {
            servent_guid: guid(),
            index: 7,
            ip: Ipv4Addr::new(4, 5, 6, 7),
            port: 6348,
        };
        assert_eq!(Push::parse(&p.encode()).unwrap(), p);
        assert!(Push::parse(&p.encode()[..20]).is_err());
    }

    #[test]
    fn bye_roundtrip() {
        let b = Bye {
            code: 503,
            reason: "shutting down".into(),
        };
        assert_eq!(Bye::parse(&b.encode()).unwrap(), b);
    }

    #[test]
    fn gem_extension_area_mixes_urn_and_ggep_any_order() {
        let mut area = Vec::new();
        area.extend_from_slice(&ggep::encode(&[Extension {
            id: "Z".into(),
            data: vec![],
        }]));
        area.push(GEM_SEP);
        area.extend_from_slice(b"urn:sha1:");
        let (urns, exts) = parse_gem_extensions(&area).unwrap();
        assert_eq!(urns, vec!["urn:sha1:".to_string()]);
        assert_eq!(exts.len(), 1);
    }
}
