//! The Gnutella descriptor header and message framing.
//!
//! Every Gnutella message is a 23-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       16    descriptor GUID
//! 16      1     payload descriptor (message type)
//! 17      1     TTL
//! 18      1     hops
//! 19      4     payload length, little-endian
//! ```
//!
//! Framing follows the smoltcp idiom: [`MessageReader`] buffers raw stream
//! bytes and yields complete `(Header, payload)` pairs without ever
//! panicking on malformed input; oversized or unknown-type messages are
//! surfaced as typed errors so the servent can drop the connection the way
//! real servents do.

use crate::guid::Guid;
use std::fmt;

/// Wire values of the payload-descriptor byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgType {
    Ping,
    Pong,
    Bye,
    /// Query-routing (QRP) RESET / PATCH.
    Route,
    Push,
    Query,
    QueryHit,
}

impl MsgType {
    pub fn to_byte(self) -> u8 {
        match self {
            MsgType::Ping => 0x00,
            MsgType::Pong => 0x01,
            MsgType::Bye => 0x02,
            MsgType::Route => 0x30,
            MsgType::Push => 0x40,
            MsgType::Query => 0x80,
            MsgType::QueryHit => 0x81,
        }
    }

    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x00 => Some(MsgType::Ping),
            0x01 => Some(MsgType::Pong),
            0x02 => Some(MsgType::Bye),
            0x30 => Some(MsgType::Route),
            0x40 => Some(MsgType::Push),
            0x80 => Some(MsgType::Query),
            0x81 => Some(MsgType::QueryHit),
            _ => None,
        }
    }
}

/// Length of the fixed descriptor header.
pub const HEADER_LEN: usize = 23;

/// Ceiling on accepted payload sizes. The de-facto servent limit was 64 KiB;
/// anything larger is either an attack or corruption.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// A decoded descriptor header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub guid: Guid,
    pub msg_type: MsgType,
    pub ttl: u8,
    pub hops: u8,
    pub payload_len: u32,
}

impl Header {
    /// Serializes into the 23-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[..16].copy_from_slice(&self.guid.0);
        out[16] = self.msg_type.to_byte();
        out[17] = self.ttl;
        out[18] = self.hops;
        out[19..23].copy_from_slice(&self.payload_len.to_le_bytes());
        out
    }

    /// Parses a header from the front of `data`.
    pub fn parse(data: &[u8]) -> Result<Header, FrameError> {
        if data.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let guid = Guid::from_slice(data).expect("checked length");
        let msg_type = MsgType::from_byte(data[16]).ok_or(FrameError::UnknownType(data[16]))?;
        let payload_len = u32::from_le_bytes([data[19], data[20], data[21], data[22]]);
        if payload_len as usize > MAX_PAYLOAD {
            return Err(FrameError::Oversized(payload_len));
        }
        Ok(Header {
            guid,
            msg_type,
            ttl: data[17],
            hops: data[18],
            payload_len,
        })
    }

    /// Standard hop bookkeeping when forwarding: decrement TTL, increment
    /// hops. Returns `None` when the message must not be forwarded further.
    pub fn hop(&self) -> Option<Header> {
        if self.ttl <= 1 {
            return None;
        }
        let mut h = *self;
        h.ttl -= 1;
        h.hops = h.hops.saturating_add(1);
        Some(h)
    }
}

/// Framing errors. `UnknownType` and `Oversized` are protocol violations
/// that should cost the peer its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet (not an error on a stream; only surfaced by
    /// one-shot parses).
    Truncated,
    UnknownType(u8),
    Oversized(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated header"),
            FrameError::UnknownType(b) => write!(f, "unknown payload descriptor 0x{b:02x}"),
            FrameError::Oversized(n) => write!(f, "payload length {n} exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a complete message (header + payload) into `out`.
pub fn encode_message(
    guid: Guid,
    msg_type: MsgType,
    ttl: u8,
    hops: u8,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let header = Header {
        guid,
        msg_type,
        ttl,
        hops,
        payload_len: payload.len() as u32,
    };
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(payload);
}

/// Incremental stream framer: feed arbitrary chunks, take complete
/// messages.
#[derive(Debug, Default)]
pub struct MessageReader {
    buf: Vec<u8>,
}

impl MessageReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered (for tests and flow-control decisions).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete message, if any. A framing error poisons the
    /// stream — the caller must drop the connection; subsequent calls keep
    /// returning the error.
    pub fn next_message(&mut self) -> Result<Option<(Header, Vec<u8>)>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = match Header::parse(&self.buf) {
            Ok(h) => h,
            Err(FrameError::Truncated) => return Ok(None),
            Err(e) => return Err(e),
        };
        let total = HEADER_LEN + header.payload_len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some((header, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn guid() -> Guid {
        Guid::random(&mut StdRng::seed_from_u64(9))
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            guid: guid(),
            msg_type: MsgType::Query,
            ttl: 4,
            hops: 2,
            payload_len: 77,
        };
        let parsed = Header::parse(&h.encode()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn type_bytes_match_spec() {
        assert_eq!(MsgType::Ping.to_byte(), 0x00);
        assert_eq!(MsgType::Pong.to_byte(), 0x01);
        assert_eq!(MsgType::Bye.to_byte(), 0x02);
        assert_eq!(MsgType::Route.to_byte(), 0x30);
        assert_eq!(MsgType::Push.to_byte(), 0x40);
        assert_eq!(MsgType::Query.to_byte(), 0x80);
        assert_eq!(MsgType::QueryHit.to_byte(), 0x81);
        for b in [0x00u8, 0x01, 0x02, 0x30, 0x40, 0x80, 0x81] {
            assert_eq!(MsgType::from_byte(b).unwrap().to_byte(), b);
        }
        assert_eq!(MsgType::from_byte(0x79), None);
    }

    #[test]
    fn reader_reassembles_across_chunk_boundaries() {
        let mut out = Vec::new();
        encode_message(guid(), MsgType::Query, 7, 0, b"\x00\x00hello\x00", &mut out);
        encode_message(guid(), MsgType::Ping, 1, 0, b"", &mut out);
        let mut r = MessageReader::new();
        let mut got = Vec::new();
        for chunk in out.chunks(5) {
            r.push(chunk);
            while let Some((h, p)) = r.next_message().unwrap() {
                got.push((h.msg_type, p));
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, MsgType::Query);
        assert_eq!(got[0].1, b"\x00\x00hello\x00");
        assert_eq!(got[1].0, MsgType::Ping);
        assert!(got[1].1.is_empty());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn unknown_type_is_fatal() {
        let mut raw = Vec::new();
        encode_message(guid(), MsgType::Ping, 1, 0, b"", &mut raw);
        raw[16] = 0x55; // corrupt the descriptor type
        let mut r = MessageReader::new();
        r.push(&raw);
        assert_eq!(r.next_message(), Err(FrameError::UnknownType(0x55)));
        // Poisoned: repeats the error rather than resyncing on garbage.
        assert_eq!(r.next_message(), Err(FrameError::UnknownType(0x55)));
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let h = Header {
            guid: guid(),
            msg_type: MsgType::Query,
            ttl: 1,
            hops: 0,
            payload_len: 0,
        };
        let mut raw = h.encode().to_vec();
        raw[19..23].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut r = MessageReader::new();
        r.push(&raw);
        assert!(matches!(r.next_message(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn hop_decrements_ttl_until_exhausted() {
        let h = Header {
            guid: guid(),
            msg_type: MsgType::Query,
            ttl: 2,
            hops: 0,
            payload_len: 0,
        };
        let h2 = h.hop().unwrap();
        assert_eq!((h2.ttl, h2.hops), (1, 1));
        assert!(h2.hop().is_none(), "TTL 1 must not be forwarded");
    }

    #[test]
    fn partial_header_waits_for_more_bytes() {
        let mut r = MessageReader::new();
        r.push(&[0u8; 10]);
        assert_eq!(r.next_message(), Ok(None));
    }
}
