//! The Gnutella 0.6 connection handshake.
//!
//! Three HTTP-style header groups:
//!
//! ```text
//! initiator: GNUTELLA CONNECT/0.6\r\n<headers>\r\n\r\n
//! responder: GNUTELLA/0.6 200 OK\r\n<headers>\r\n\r\n     (or 503 + X-Try-Ultrapeers)
//! initiator: GNUTELLA/0.6 200 OK\r\n<headers>\r\n\r\n
//! ```
//!
//! after which both sides switch to binary descriptor framing. The state
//! machines here are sans-IO: feed bytes, get either "waiting", bytes to
//! send, an established peer description (plus any binary bytes that
//! arrived in the same chunk), or a rejection.

use p2pmal_netsim::HostAddr;
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Ceiling on handshake bytes before we call it an attack.
const MAX_HANDSHAKE: usize = 16 * 1024;

/// What one side advertises / learns about the other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfo {
    pub user_agent: String,
    pub ultrapeer: bool,
    /// Supports QRP (X-Query-Routing: 0.1).
    pub query_routing: bool,
    /// The address the peer claims to listen on (`Listen-IP`).
    pub listen_addr: Option<HostAddr>,
}

/// Local handshake parameters.
#[derive(Debug, Clone)]
pub struct HandshakeConfig {
    pub user_agent: String,
    pub ultrapeer: bool,
    /// Advertised Listen-IP. NATed hosts leak their private address here —
    /// same mechanism as in query hits.
    pub listen_addr: Option<HostAddr>,
}

impl HandshakeConfig {
    fn headers(&self) -> String {
        let mut h = String::new();
        h.push_str(&format!("User-Agent: {}\r\n", self.user_agent));
        h.push_str(&format!(
            "X-Ultrapeer: {}\r\n",
            if self.ultrapeer { "True" } else { "False" }
        ));
        h.push_str("X-Query-Routing: 0.1\r\n");
        if let Some(a) = self.listen_addr {
            h.push_str(&format!("Listen-IP: {a}\r\n"));
        }
        h
    }
}

/// Handshake progress report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsEvent {
    /// Not enough bytes yet.
    NeedMore,
    /// Handshake complete. `send` must be written to the peer (empty for
    /// the initiator), `leftover` is binary data that followed the final
    /// header group in the same read.
    Established {
        peer: PeerInfo,
        send: Vec<u8>,
        leftover: Vec<u8>,
    },
    /// The peer rejected us (or we rejected them); the connection should be
    /// closed after `send` (possibly empty) is flushed.
    Rejected {
        code: u16,
        try_hosts: Vec<HostAddr>,
        send: Vec<u8>,
    },
}

/// Handshake protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsError {
    /// First line was not a Gnutella greeting/status.
    BadGreeting,
    BadStatusLine,
    HeaderSyntax,
    TooLong,
}

impl fmt::Display for HsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsError::BadGreeting => write!(f, "not a Gnutella 0.6 greeting"),
            HsError::BadStatusLine => write!(f, "malformed status line"),
            HsError::HeaderSyntax => write!(f, "malformed header line"),
            HsError::TooLong => write!(f, "handshake exceeds size limit"),
        }
    }
}

impl std::error::Error for HsError {}

/// One parsed header group: status/greeting line plus headers.
#[derive(Debug, Clone)]
struct Group {
    first_line: String,
    headers: BTreeMap<String, String>,
    /// Bytes consumed from the buffer, including the blank line.
    consumed: usize,
}

/// Tries to split one `\r\n\r\n`-terminated group off the front of `buf`.
fn parse_group(buf: &[u8]) -> Result<Option<Group>, HsError> {
    let end = match find_subsequence(buf, b"\r\n\r\n") {
        Some(i) => i,
        None => {
            if buf.len() > MAX_HANDSHAKE {
                return Err(HsError::TooLong);
            }
            return Ok(None);
        }
    };
    let text = std::str::from_utf8(&buf[..end]).map_err(|_| HsError::HeaderSyntax)?;
    let mut lines = text.split("\r\n");
    let first_line = lines.next().unwrap_or("").to_string();
    let mut headers = BTreeMap::new();
    for line in lines {
        let (k, v) = line.split_once(':').ok_or(HsError::HeaderSyntax)?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    Ok(Some(Group {
        first_line,
        headers,
        consumed: end + 4,
    }))
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn peer_info(g: &Group) -> PeerInfo {
    PeerInfo {
        user_agent: g.headers.get("user-agent").cloned().unwrap_or_default(),
        ultrapeer: g
            .headers
            .get("x-ultrapeer")
            .map(|v| v.eq_ignore_ascii_case("true"))
            .unwrap_or(false),
        query_routing: g.headers.contains_key("x-query-routing"),
        listen_addr: g.headers.get("listen-ip").and_then(|v| parse_host(v)),
    }
}

fn parse_host(s: &str) -> Option<HostAddr> {
    let (ip, port) = s.split_once(':')?;
    Some(HostAddr::new(
        Ipv4Addr::from_str(ip.trim()).ok()?,
        port.trim().parse().ok()?,
    ))
}

fn parse_status(line: &str) -> Result<u16, HsError> {
    // "GNUTELLA/0.6 200 OK"
    let mut parts = line.split_whitespace();
    if parts.next() != Some("GNUTELLA/0.6") {
        return Err(HsError::BadStatusLine);
    }
    parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or(HsError::BadStatusLine)
}

fn parse_try_hosts(g: &Group) -> Vec<HostAddr> {
    g.headers
        .get("x-try-ultrapeers")
        .map(|v| v.split(',').filter_map(parse_host).collect())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Initiator
// ---------------------------------------------------------------------------

/// Initiator-side handshake state machine.
#[derive(Debug)]
pub struct Initiator {
    config: HandshakeConfig,
    buf: Vec<u8>,
}

impl Initiator {
    pub fn new(config: HandshakeConfig) -> Self {
        Initiator {
            config,
            buf: Vec::new(),
        }
    }

    /// The opening `GNUTELLA CONNECT/0.6` group to send on connect.
    pub fn greeting(&self) -> Vec<u8> {
        format!("GNUTELLA CONNECT/0.6\r\n{}\r\n", self.config.headers()).into_bytes()
    }

    /// Feed responder bytes; returns the handshake outcome.
    pub fn on_data(&mut self, data: &[u8]) -> Result<HsEvent, HsError> {
        self.buf.extend_from_slice(data);
        let group = match parse_group(&self.buf)? {
            Some(g) => g,
            None => return Ok(HsEvent::NeedMore),
        };
        let code = parse_status(&group.first_line)?;
        if code != 200 {
            return Ok(HsEvent::Rejected {
                code,
                try_hosts: parse_try_hosts(&group),
                send: Vec::new(),
            });
        }
        let peer = peer_info(&group);
        let leftover = self.buf[group.consumed..].to_vec();
        // Final ack: minimal headers (vendors echoed content negotiation
        // here; we confirm the connection only).
        let send = b"GNUTELLA/0.6 200 OK\r\n\r\n".to_vec();
        Ok(HsEvent::Established {
            peer,
            send,
            leftover,
        })
    }
}

// ---------------------------------------------------------------------------
// Responder
// ---------------------------------------------------------------------------

/// What the responder decides once it has seen the initiator's headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    Accept,
    /// Reject with 503 and a list of other ultrapeers to try.
    Reject(Vec<HostAddr>),
}

/// Responder-side handshake state machine. The caller supplies an admission
/// decision when the initiator's headers arrive (slot policy lives in the
/// servent, not here).
#[derive(Debug)]
pub struct Responder {
    config: HandshakeConfig,
    buf: Vec<u8>,
    state: RespState,
}

#[derive(Debug, PartialEq, Eq)]
enum RespState {
    /// Waiting for `GNUTELLA CONNECT/0.6` + headers.
    AwaitConnect,
    /// Sent 200 OK; waiting for the initiator's final ack.
    AwaitAck {
        peer: PeerInfo,
    },
    Done,
}

/// Responder progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespEvent {
    NeedMore,
    /// Initiator headers arrived: the caller must decide admission via
    /// [`Responder::admit`]. `peer` is what the initiator advertised.
    Decide {
        peer: PeerInfo,
    },
    /// Handshake complete (after ack); `leftover` is early binary data.
    Established {
        peer: PeerInfo,
        leftover: Vec<u8>,
    },
}

impl Responder {
    pub fn new(config: HandshakeConfig) -> Self {
        Responder {
            config,
            buf: Vec::new(),
            state: RespState::AwaitConnect,
        }
    }

    /// Feed initiator bytes.
    pub fn on_data(&mut self, data: &[u8]) -> Result<RespEvent, HsError> {
        self.buf.extend_from_slice(data);
        match &self.state {
            RespState::AwaitConnect => {
                let group = match parse_group(&self.buf)? {
                    Some(g) => g,
                    None => return Ok(RespEvent::NeedMore),
                };
                if group.first_line != "GNUTELLA CONNECT/0.6" {
                    return Err(HsError::BadGreeting);
                }
                let peer = peer_info(&group);
                self.buf.drain(..group.consumed);
                // Hold in a deciding state; `admit` moves us forward.
                self.state = RespState::AwaitAck { peer: peer.clone() };
                Ok(RespEvent::Decide { peer })
            }
            RespState::AwaitAck { peer } => {
                let group = match parse_group(&self.buf)? {
                    Some(g) => g,
                    None => return Ok(RespEvent::NeedMore),
                };
                let code = parse_status(&group.first_line)?;
                if code != 200 {
                    return Err(HsError::BadStatusLine);
                }
                let peer = peer.clone();
                let leftover = self.buf[group.consumed..].to_vec();
                self.buf.clear();
                self.state = RespState::Done;
                Ok(RespEvent::Established { peer, leftover })
            }
            RespState::Done => Ok(RespEvent::NeedMore),
        }
    }

    /// Produces the responder's reply for the admission decision. Must be
    /// called exactly once, after [`RespEvent::Decide`].
    pub fn admit(&mut self, decision: Admission) -> Vec<u8> {
        match decision {
            Admission::Accept => {
                format!("GNUTELLA/0.6 200 OK\r\n{}\r\n", self.config.headers()).into_bytes()
            }
            Admission::Reject(hosts) => {
                self.state = RespState::Done;
                let list = hosts
                    .iter()
                    .map(|h| h.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "GNUTELLA/0.6 503 Service unavailable\r\nUser-Agent: {}\r\nX-Try-Ultrapeers: {list}\r\n\r\n",
                    self.config.user_agent
                )
                .into_bytes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ua: &str, up: bool) -> HandshakeConfig {
        HandshakeConfig {
            user_agent: ua.into(),
            ultrapeer: up,
            listen_addr: Some(HostAddr::new(Ipv4Addr::new(10, 0, 0, 5), 6346)),
        }
    }

    /// Drives a complete successful handshake between an initiator and a
    /// responder, byte-chunked to exercise reassembly.
    #[test]
    fn full_handshake_establishes_both_sides() {
        let mut init = Initiator::new(cfg("LimeWire/4.12", false));
        let mut resp = Responder::new(cfg("UltraNode/1.0", true));

        // initiator -> responder, dribbled in 7-byte chunks
        let greeting = init.greeting();
        let mut decide = None;
        for chunk in greeting.chunks(7) {
            match resp.on_data(chunk).unwrap() {
                RespEvent::NeedMore => {}
                RespEvent::Decide { peer } => decide = Some(peer),
                e => panic!("unexpected {e:?}"),
            }
        }
        let peer = decide.expect("responder saw the connect group");
        assert_eq!(peer.user_agent, "LimeWire/4.12");
        assert!(!peer.ultrapeer);
        assert!(peer.query_routing);
        assert_eq!(
            peer.listen_addr,
            Some(HostAddr::new(Ipv4Addr::new(10, 0, 0, 5), 6346))
        );

        // responder accepts
        let ok = resp.admit(Admission::Accept);

        // responder -> initiator
        let ev = init.on_data(&ok).unwrap();
        let (peer2, ack, leftover) = match ev {
            HsEvent::Established {
                peer,
                send,
                leftover,
            } => (peer, send, leftover),
            e => panic!("unexpected {e:?}"),
        };
        assert_eq!(peer2.user_agent, "UltraNode/1.0");
        assert!(peer2.ultrapeer);
        assert!(leftover.is_empty());

        // initiator ack (+ early binary data in the same write)
        let mut wire = ack.clone();
        wire.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        match resp.on_data(&wire).unwrap() {
            RespEvent::Established { peer, leftover } => {
                assert_eq!(peer.user_agent, "LimeWire/4.12");
                assert_eq!(leftover, vec![0xAB, 0xCD, 0xEF]);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn rejection_carries_try_hosts() {
        let mut init = Initiator::new(cfg("LimeWire/4.12", false));
        let mut resp = Responder::new(cfg("UltraNode/1.0", true));
        let ev = resp.on_data(&init.greeting()).unwrap();
        assert!(matches!(ev, RespEvent::Decide { .. }));
        let hosts = vec![
            HostAddr::new(Ipv4Addr::new(1, 2, 3, 4), 6346),
            HostAddr::new(Ipv4Addr::new(5, 6, 7, 8), 6347),
        ];
        let reply = resp.admit(Admission::Reject(hosts.clone()));
        match init.on_data(&reply).unwrap() {
            HsEvent::Rejected {
                code, try_hosts, ..
            } => {
                assert_eq!(code, 503);
                assert_eq!(try_hosts, hosts);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn responder_rejects_non_gnutella_greeting() {
        let mut resp = Responder::new(cfg("U/1", true));
        let err = resp.on_data(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(err, Err(HsError::BadGreeting));
    }

    #[test]
    fn initiator_rejects_garbage_status() {
        let mut init = Initiator::new(cfg("L/1", false));
        assert_eq!(
            init.on_data(b"HTTP/1.1 200 OK\r\n\r\n"),
            Err(HsError::BadStatusLine)
        );
    }

    #[test]
    fn oversized_handshake_is_fatal() {
        let mut resp = Responder::new(cfg("U/1", true));
        let big = vec![b'A'; MAX_HANDSHAKE + 1];
        assert_eq!(resp.on_data(&big), Err(HsError::TooLong));
    }

    #[test]
    fn header_syntax_violation() {
        let mut resp = Responder::new(cfg("U/1", true));
        let err = resp.on_data(b"GNUTELLA CONNECT/0.6\r\nNoColonHere\r\n\r\n");
        assert_eq!(err, Err(HsError::HeaderSyntax));
    }

    #[test]
    fn listen_ip_parsing_tolerates_bad_values() {
        let mut resp = Responder::new(cfg("U/1", true));
        let ev = resp
            .on_data(b"GNUTELLA CONNECT/0.6\r\nListen-IP: not-an-addr\r\n\r\n")
            .unwrap();
        match ev {
            RespEvent::Decide { peer } => assert_eq!(peer.listen_addr, None),
            e => panic!("unexpected {e:?}"),
        }
    }
}
