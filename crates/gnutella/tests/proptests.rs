//! Property tests: codec roundtrips hold for arbitrary field values, and
//! no parser panics on arbitrary (adversarial) wire bytes.

use p2pmal_gnutella::ggep::{self, Extension};
use p2pmal_gnutella::guid::Guid;
use p2pmal_gnutella::handshake::{HandshakeConfig, Initiator, Responder};
use p2pmal_gnutella::http::{parse_giv, RequestReader, ResponseReader};
use p2pmal_gnutella::message::{encode_message, Header, MessageReader, MsgType};
use p2pmal_gnutella::payload::{Bye, HitResult, Ping, Pong, Push, QhdFlags, Query, QueryHit};
use p2pmal_gnutella::qrp::{keywords, QrpReceiver, QrpTable, RouteMsg};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_guid() -> impl Strategy<Value = Guid> {
    any::<[u8; 16]>().prop_map(Guid)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

/// Filename-ish strings: printable ASCII without NUL.
fn arb_name() -> impl Strategy<Value = String> {
    "[ -~&&[^\\x00]]{0,60}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = MessageReader::new();
        r.push(&data);
        // Drain until error or empty; must never panic or loop forever.
        for _ in 0..64 {
            match r.next_message() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn payload_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Ping::parse(&data);
        let _ = Pong::parse(&data);
        let _ = Query::parse(&data);
        let _ = QueryHit::parse(&data);
        let _ = Push::parse(&data);
        let _ = Bye::parse(&data);
        let _ = Header::parse(&data);
        let _ = RouteMsg::parse(&data);
        let _ = ggep::parse(&data);
        let _ = parse_giv(&data);
    }

    #[test]
    fn http_readers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut rr = RequestReader::new();
        rr.push(&data);
        let _ = rr.request();
        let mut resp = ResponseReader::new(1 << 16);
        resp.push(&data);
        let _ = resp.response();
    }

    #[test]
    fn handshake_machines_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let cfg = HandshakeConfig { user_agent: "T/1".into(), ultrapeer: false, listen_addr: None };
        let mut i = Initiator::new(cfg.clone());
        let _ = i.on_data(&data);
        let mut r = Responder::new(cfg);
        let _ = r.on_data(&data);
    }

    #[test]
    fn pong_roundtrip(port in any::<u16>(), ip in arb_ip(), files in any::<u32>(), kb in any::<u32>()) {
        let p = Pong { port, ip, file_count: files, kbytes: kb, ggep: Vec::new() };
        prop_assert_eq!(Pong::parse(&p.encode()).unwrap(), p);
    }

    #[test]
    fn query_roundtrip(speed in any::<u16>(), text in "[ -~&&[^\\x00\\x1c]]{0,80}") {
        let q = Query { min_speed: speed, text: text.clone(), urns: vec![], ggep: vec![] };
        let parsed = Query::parse(&q.encode()).unwrap();
        prop_assert_eq!(parsed.text, text);
        prop_assert_eq!(parsed.min_speed, speed);
    }

    #[test]
    fn queryhit_roundtrip(
        guid in arb_guid(),
        port in any::<u16>(),
        ip in arb_ip(),
        speed in any::<u32>(),
        results in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), arb_name()),
            0..8
        ),
        push in any::<bool>(),
    ) {
        let qh = QueryHit {
            port,
            ip,
            speed,
            results: results
                .into_iter()
                .map(|(index, size, name)| HitResult { index, size, name, sha1: None })
                .collect(),
            vendor: *b"LIME",
            flags: QhdFlags::new().with(p2pmal_gnutella::payload::QHD_PUSH, push),
            ggep: Vec::new(),
            servent_guid: guid,
        };
        prop_assert_eq!(QueryHit::parse(&qh.encode()).unwrap(), qh);
    }

    #[test]
    fn push_roundtrip(guid in arb_guid(), index in any::<u32>(), ip in arb_ip(), port in any::<u16>()) {
        let p = Push { servent_guid: guid, index, ip, port };
        prop_assert_eq!(Push::parse(&p.encode()).unwrap(), p);
    }

    #[test]
    fn envelope_roundtrip(
        guid in arb_guid(),
        ttl in any::<u8>(),
        hops in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut wire = Vec::new();
        encode_message(guid, MsgType::Query, ttl, hops, &payload, &mut wire);
        let mut r = MessageReader::new();
        r.push(&wire);
        let (h, p) = r.next_message().unwrap().unwrap();
        prop_assert_eq!(h.guid, guid);
        prop_assert_eq!((h.ttl, h.hops), (ttl, hops));
        prop_assert_eq!(p, payload);
    }

    #[test]
    fn ggep_roundtrip(exts in proptest::collection::vec(
        ("[A-Za-z]{1,15}", proptest::collection::vec(any::<u8>(), 0..100)),
        1..5
    )) {
        let exts: Vec<Extension> = exts
            .into_iter()
            .map(|(id, data)| Extension { id, data })
            .collect();
        let block = ggep::encode(&exts);
        let (parsed, used) = ggep::parse(&block).unwrap();
        prop_assert_eq!(used, block.len());
        prop_assert_eq!(parsed, exts);
    }

    #[test]
    fn qrp_inserted_names_always_match(names in proptest::collection::vec("[a-z]{3,12}( [a-z]{3,12}){0,3}", 1..10)) {
        let mut t = QrpTable::new(12, 7);
        for n in &names {
            t.insert_name(n);
        }
        for n in &names {
            prop_assert!(t.might_match(n), "inserted name {n:?} must match its own query");
        }
    }

    #[test]
    fn qrp_transfer_preserves_table(names in proptest::collection::vec("[a-z]{3,12}", 0..20), compress in any::<bool>()) {
        let mut t = QrpTable::new(10, 7);
        for n in &names {
            t.insert_name(n);
        }
        let mut rx = QrpReceiver::new();
        for m in t.to_messages(128, compress) {
            // Wire roundtrip each message too.
            let m2 = RouteMsg::parse(&m.encode()).unwrap();
            rx.apply(&m2).unwrap();
        }
        // The received present-bit filter must agree with the sent table
        // on every query (the only observable the forwarding path reads).
        let f = rx.filter().unwrap();
        prop_assert_eq!(f.population(), t.population());
        for n in &names {
            prop_assert_eq!(f.might_match(n), t.might_match(n), "query {:?}", n);
        }
        for probe in ["zzz", "qqq xxx", "abc"] {
            prop_assert_eq!(f.might_match(probe), t.might_match(probe), "probe {:?}", probe);
        }
    }

    #[test]
    fn qrp_keywords_are_lowercase_and_long(text in "[ -~]{0,60}") {
        for k in keywords(&text) {
            prop_assert!(k.len() >= 3);
            prop_assert_eq!(k.clone(), k.to_ascii_lowercase());
        }
    }
}
