//! Local, dependency-free stand-in for the subset of the `proptest` 1.x API
//! this workspace's property tests use: the `proptest!` macro over
//! plain-identifier bindings, `any::<T>()`, integer/float range strategies,
//! regex-literal string strategies (a small generative subset: literals,
//! escapes, character classes with `&&[^…]` intersection, groups with
//! alternation, and `{m,n}` repetition), `collection::{vec, btree_set}`,
//! tuple strategies, `prop_map`, and the `prop_assert*`/`prop_assume` macros.
//!
//! The build environment cannot reach crates.io. Shrinking is intentionally
//! not implemented: a failing case panics via `assert!`/`assert_eq!`, whose
//! message carries the concrete values. Generation is deterministic per test
//! (seeded from the test's name), so failures reproduce exactly.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator (xorshift64*).
pub struct TestRng(u64);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeds a [`TestRng`] from the test's name (FNV-1a), so each property is
/// deterministic run-to-run but distinct from its neighbours.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng(h | 1)
}

/// A generator of values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary + Copy + Default, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Regex-literal string strategy over the generative subset described in the
/// crate docs. ASCII only, which covers every pattern in this workspace.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = regex_gen::parse(self);
        let mut out = String::new();
        regex_gen::emit(&nodes, rng, &mut out);
        out
    }
}

mod regex_gen {
    use super::TestRng;

    pub enum Node {
        Lit(char),
        /// Allowed ASCII characters.
        Class(Vec<char>),
        /// Alternatives, each a sequence.
        Group(Vec<Vec<(Node, Quant)>>),
    }

    #[derive(Clone, Copy)]
    pub struct Quant {
        pub min: usize,
        pub max: usize,
    }

    const ONE: Quant = Quant { min: 1, max: 1 };

    pub fn parse(pattern: &str) -> Vec<(Node, Quant)> {
        let chars: Vec<char> = pattern.chars().collect();
        let (seq, used) = parse_seq(&chars, 0, None);
        assert!(
            used == chars.len(),
            "unsupported regex pattern: {pattern:?}"
        );
        seq
    }

    /// Parses a sequence until `stop` (or end of input); returns the nodes
    /// and the index of the stopping character.
    fn parse_seq(
        chars: &[char],
        mut i: usize,
        stop: Option<&[char]>,
    ) -> (Vec<(Node, Quant)>, usize) {
        let mut seq = Vec::new();
        while i < chars.len() {
            if let Some(stop) = stop {
                if stop.contains(&chars[i]) {
                    break;
                }
            }
            let node = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(chars, i + 1);
                    i = next;
                    Node::Class(set)
                }
                '(' => {
                    let mut alts = Vec::new();
                    i += 1;
                    loop {
                        let (alt, next) = parse_seq(chars, i, Some(&['|', ')']));
                        alts.push(alt);
                        i = next;
                        match chars.get(i) {
                            Some('|') => i += 1,
                            Some(')') => {
                                i += 1;
                                break;
                            }
                            _ => panic!("unterminated group in regex"),
                        }
                    }
                    Node::Group(alts)
                }
                '\\' => {
                    let (c, next) = parse_escape(chars, i + 1);
                    i = next;
                    Node::Lit(c)
                }
                c => {
                    i += 1;
                    Node::Lit(c)
                }
            };
            let quant = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed {}")
                        + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((lo, hi)) => Quant {
                            min: lo.parse().expect("bad {m,n}"),
                            max: hi.parse().expect("bad {m,n}"),
                        },
                        None => {
                            let n = spec.parse().expect("bad {n}");
                            Quant { min: n, max: n }
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    Quant { min: 0, max: 1 }
                }
                Some('*') => {
                    i += 1;
                    Quant { min: 0, max: 8 }
                }
                Some('+') => {
                    i += 1;
                    Quant { min: 1, max: 8 }
                }
                _ => ONE,
            };
            seq.push((node, quant));
        }
        (seq, i)
    }

    fn parse_escape(chars: &[char], i: usize) -> (char, usize) {
        match chars.get(i) {
            Some('x') => {
                let hex: String = chars[i + 1..i + 3].iter().collect();
                let v = u8::from_str_radix(&hex, 16).expect("bad \\xNN");
                (v as char, i + 3)
            }
            Some('n') => ('\n', i + 1),
            Some('t') => ('\t', i + 1),
            Some('r') => ('\r', i + 1),
            Some(&c) => (c, i + 1),
            None => panic!("dangling escape in regex"),
        }
    }

    /// Parses a character class body (after `[`), including `&&[^…]`
    /// intersection; returns the allowed set and the index past `]`.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let negate = chars.get(i) == Some(&'^');
        if negate {
            i += 1;
        }
        let mut set = [false; 128];
        loop {
            match chars.get(i) {
                Some(']') => {
                    i += 1;
                    break;
                }
                Some('&') if chars.get(i + 1) == Some(&'&') => {
                    // Intersection with a nested class: `[base&&[^excluded]]`.
                    assert_eq!(chars.get(i + 2), Some(&'['), "expected class after &&");
                    let (other, next) = parse_class(chars, i + 3);
                    let mut keep = [false; 128];
                    for c in other {
                        keep[c as usize] = true;
                    }
                    for (slot, k) in set.iter_mut().zip(keep) {
                        *slot &= k;
                    }
                    assert_eq!(chars.get(next), Some(&']'), "expected ] after && class");
                    i = next + 1;
                    break;
                }
                Some(&c) => {
                    let lo = if c == '\\' {
                        let (e, next) = parse_escape(chars, i + 1);
                        i = next;
                        e
                    } else {
                        i += 1;
                        c
                    };
                    // A `-` that is not last in the class denotes a range.
                    if chars.get(i) == Some(&'-') && chars.get(i + 1) != Some(&']') {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            let (e, next) = parse_escape(chars, i + 1);
                            i = next;
                            e
                        } else {
                            let h = chars[i];
                            i += 1;
                            h
                        };
                        for flag in &mut set[lo as usize..=hi as usize] {
                            *flag = true;
                        }
                    } else {
                        set[lo as usize] = true;
                    }
                }
                None => panic!("unterminated character class"),
            }
        }
        let chosen: Vec<char> = (0..128u8)
            .filter(|&v| set[v as usize] != negate)
            .map(|v| v as char)
            .collect();
        (chosen, i)
    }

    pub fn emit(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
        for (node, q) in seq {
            let reps = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
            for _ in 0..reps {
                match node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(set) => {
                        assert!(!set.is_empty(), "empty character class in regex");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Node::Group(alts) => {
                        let alt = &alts[rng.below(alts.len() as u64) as usize];
                        emit(alt, rng, out);
                    }
                }
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            // Duplicates collapse, so the set may come up short of the
            // requested length; properties here only need "some set".
            let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($cfg).cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = 256u32; $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cases = $cases:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                #[allow(unused_mut)]
                for __i in 0..($cases as usize) {
                    // Bindings evaluate top to bottom, so generation order is
                    // deterministic and matches the declaration order. The
                    // immediately-invoked closure gives `prop_assume!` a
                    // `return` that abandons just this case.
                    #[allow(unused_mut)]
                    #[allow(clippy::redundant_closure_call)]
                    {
                        $(let mut $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                        (move || $body)();
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the rest of the current case when the assumption fails. The body
/// runs inside a per-case closure, so `return` abandons just this case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_expected_shapes() {
        let mut rng = crate::test_rng("shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{3,12}( [a-z]{3,12}){0,3}", &mut rng);
            for word in s.split(' ') {
                assert!((3..=12).contains(&word.len()), "{s:?}");
                assert!(word.bytes().all(|b| b.is_ascii_lowercase()));
            }
            let f = Strategy::generate(&"[a-z]{1,12}\\.(exe|zip|txt)", &mut rng);
            let (stem, ext) = f.rsplit_once('.').unwrap();
            assert!((1..=12).contains(&stem.len()));
            assert!(["exe", "zip", "txt"].contains(&ext));
            let printable = Strategy::generate(&"[ -~&&[^\\x00\\x1c]]{0,80}", &mut rng);
            assert!(printable.bytes().all(|b| (0x20..=0x7E).contains(&b)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u64..10, b in any::<bool>(), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
