//! Local, dependency-free stand-in for the subset of the `criterion` 0.5 API
//! the workspace's benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment cannot reach crates.io, so instead of the full
//! statistical harness this runs a fixed warm-up, takes `sample_size` timed
//! samples (auto-scaling iterations per sample toward ~100ms), and prints the
//! median per-iteration time plus derived throughput. That is enough for the
//! relative comparisons the benches make (before/after, A vs B); confidence
//! intervals and HTML reports are intentionally out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's throughput is derived from per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing hint for `iter_batched`; only the setup/measure split matters
/// here, so all variants behave identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup runs outside the timed region, matching criterion's contract.
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: grow iteration count until one sample takes ~100ms (capped so
    // month-scale sim benches with sample_size(10) stay tractable).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(100) || iters >= 1 << 20 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 16
        } else {
            let target = Duration::from_millis(120).as_nanos();
            let scale = (target / b.elapsed.as_nanos().max(1)).max(2) as u64;
            (iters.saturating_mul(scale)).min(1 << 20)
        };
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];

    let time = if median < 1e-6 {
        format!("{:.1} ns", median * 1e9)
    } else if median < 1e-3 {
        format!("{:.2} µs", median * 1e6)
    } else if median < 1.0 {
        format!("{:.2} ms", median * 1e3)
    } else {
        format!("{:.3} s", median)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / median),
        None => String::new(),
    };
    println!("{label:<48} {time:>12}/iter{rate}   ({samples} samples x {iters} iters)");
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_samples(name, 10, None, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
            samples: 10,
        }
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_samples(&label, self.samples, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64)).sample_size(3);
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
