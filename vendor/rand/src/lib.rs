//! Local, dependency-free stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng`/`RngCore` methods `next_u32`/`next_u64`/`fill_bytes`/`gen`/
//! `gen_bool`/`gen_range`.
//!
//! The build environment has no access to crates.io, and the reproduction's
//! determinism contract only requires *self*-consistency — the same seed
//! must produce the same study on every run of *this* code base — so a
//! small, fully specified generator is preferable to an unfetchable
//! dependency. `StdRng` here is xoshiro256++ (Blackman & Vigna, 2019)
//! seeded through SplitMix64, the same seeding construction upstream
//! `SeedableRng::seed_from_u64` documents. Streams differ from upstream
//! `rand`'s ChaCha12-based `StdRng`; nothing in the workspace depends on
//! upstream's exact streams.

use std::ops::{Range, RangeInclusive};

/// The core of every generator: raw uniform words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` through SplitMix64 into a full seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro's state must not be all zero.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased uniform draw from `[0, span)` by rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject the incomplete top interval so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Slice-like buffers [`Rng::fill`] can populate.
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1e-9f64..1.0);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf[8..].iter().any(|&b| b != 0));
    }
}
